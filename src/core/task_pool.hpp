// The process-wide concurrency substrate. Every parallel loop in the
// repo — fault-simulation campaigns, reliability/coverage accumulation,
// the read-only per-PO sweeps of the synthesis engine, and the per-circuit
// rows of the paper-table bench drivers — runs on this one pool, so the
// process never oversubscribes itself with nested ad-hoc std::thread
// spawning (the pre-pool FaultSimEngine behaviour).
//
// Scheduling model: a parallel loop is published as a chunk-counter job on
// a shared active-job list. Worker threads (and the submitting thread,
// which always participates) repeatedly steal the next chunk of any
// in-flight job — an idle worker therefore drains the fine-grained inner
// loops of whichever coarse task is still running, which is what makes
// imbalanced suites (one big circuit row, many small ones) scale. A
// participant that exhausts a nested job's chunks blocks only on the
// finite chunk bodies still executing, so nested submission from inside a
// worker can never deadlock.
//
// Determinism contract (the repo convention established by the fault
// engine's per-index seed derivation): the pool guarantees that every
// index of a loop is executed exactly once and that `reduce_ordered`
// folds partial results in index order on the calling thread. Callers
// guarantee that the body writes only to state owned by its index (or its
// slot). Under those two rules every result is bit-identical for any
// worker count, including 1 (`APX_THREADS=1` runs loops inline on the
// caller).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace apx {

/// Global parallelism policy: the `APX_THREADS` environment variable when
/// set to a positive integer, else std::thread::hardware_concurrency().
/// Cached after the first read; `set_thread_count` overrides it.
int thread_count();

/// Programmatic override of thread_count() (the option-level twin of
/// APX_THREADS; used by tests and drivers). 0 clears the override.
void set_thread_count(int n);

/// Parses an APX_THREADS-style value: positive integer => that count,
/// anything else (null, junk, <= 0) => 0 ("unset"). Exposed for tests.
int parse_thread_env(const char* text);

/// Resolves a per-call `num_threads` option: positive values are honored
/// verbatim (the pool grows on demand), 0 or negative defers to the
/// thread_count() policy.
int resolve_thread_option(int requested);

class TaskPool {
 public:
  /// The process-wide pool. Worker threads are spawned lazily, up to the
  /// largest parallelism any call has asked for (capped at kMaxWorkers).
  static TaskPool& instance();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Runs body(slot, i) for every i in [begin, end). `slot` is dense in
  /// [0, max_slots) and unique among threads concurrently executing this
  /// loop — the hook for per-slot scratch arenas and exact per-slot
  /// accumulators. max_slots <= 0 defers to thread_count(); max_slots == 1
  /// (or a single-iteration range capped to it) executes inline on the
  /// calling thread with slot 0. `grain` consecutive indices are executed
  /// per steal. The first exception thrown by any chunk drains the loop
  /// and is rethrown on the calling thread.
  void parallel_for_slotted(int64_t begin, int64_t end, int max_slots,
                            int64_t grain,
                            const std::function<void(int, int64_t)>& body);

  /// Slot-oblivious form.
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t)>& body,
                    int max_slots = 0, int64_t grain = 1);

  /// out[i] = f(i) for i in [0, n): results land in index order by
  /// construction, independent of scheduling.
  template <typename T>
  std::vector<T> parallel_map(int64_t n, const std::function<T(int64_t)>& f,
                              int max_slots = 0, int64_t grain = 1) {
    std::vector<T> out(static_cast<size_t>(n > 0 ? n : 0));
    parallel_for(
        0, n, [&](int64_t i) { out[static_cast<size_t>(i)] = f(i); },
        max_slots, grain);
    return out;
  }

  /// Ordered reduction: maps in parallel, then folds the partial results
  /// serially in index order on the calling thread. With a deterministic
  /// map this is bit-identical for every worker count even when `reduce`
  /// is non-associative in floating point.
  template <typename T, typename Reduce>
  T reduce_ordered(int64_t n, T init, const std::function<T(int64_t)>& map_fn,
                   const Reduce& reduce, int max_slots = 0,
                   int64_t grain = 1) {
    std::vector<T> parts = parallel_map<T>(n, map_fn, max_slots, grain);
    T acc = std::move(init);
    for (T& part : parts) acc = reduce(std::move(acc), std::move(part));
    return acc;
  }

  /// Worker threads currently spawned (diagnostics; grows on demand).
  int num_workers() const;

  /// Hard cap on spawned workers (requests beyond it are clamped).
  static constexpr int kMaxWorkers = 64;

 private:
  TaskPool();
  ~TaskPool();

  struct Job;
  struct Impl;
  Impl* impl_;

  void ensure_workers(int n);
  static void worker_loop(Impl* impl);
};

}  // namespace apx
