#include "core/cube_selection.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tt/truth_table.hpp"

namespace apx {

bool cube_conforms(const Cube& cube,
                   const std::vector<NodeType>& fanin_types) {
  for (size_t k = 0; k < fanin_types.size(); ++k) {
    LitCode lit = cube.get(static_cast<int>(k));
    switch (fanin_types[k]) {
      case NodeType::kEx:
        break;  // every literal conforms
      case NodeType::kDc:
        if (lit != LitCode::kFree) return false;
        break;
      case NodeType::kZero:
        if (lit == LitCode::kPos) return false;
        break;
      case NodeType::kOne:
        if (lit == LitCode::kNeg) return false;
        break;
    }
  }
  return true;
}

Sop exact_cube_selection(const Sop& phase_sop,
                         const std::vector<NodeType>& fanin_types) {
  Sop selected(phase_sop.num_vars());
  for (const Cube& c : phase_sop.cubes()) {
    if (cube_conforms(c, fanin_types)) selected.add_cube(c);
  }
  return selected;
}

double cube_probability(const Cube& cube, const std::vector<double>& probs) {
  double p = 1.0;
  for (int v = 0; v < cube.num_vars(); ++v) {
    switch (cube.get(v)) {
      case LitCode::kPos:
        p *= probs[v];
        break;
      case LitCode::kNeg:
        p *= 1.0 - probs[v];
        break;
      case LitCode::kEmpty:
        return 0.0;
      case LitCode::kFree:
        break;
    }
  }
  return p;
}

std::optional<Sop> odc_cube_selection(
    const Sop& phase_sop, const std::vector<NodeType>& fanin_types,
    const std::vector<double>* fanin_probs) {
  const int n = phase_sop.num_vars();
  if (n > kMaxLocalVars) return std::nullopt;

  // Feasible subspace (paper Eq. 1, phase-matched form):
  //   F * prod_i term_i, with
  //   term_i = (x_i + ~Obs_i)  for a type-1 fanin
  //          = (~x_i + ~Obs_i) for a type-0 fanin
  //          = ~Obs_i          for a type-DC fanin
  //          = 1               for a type-EX fanin,
  // where Obs_i = dF/dx_i is the local observability function.
  TruthTable f = TruthTable::from_sop(phase_sop);
  TruthTable feasible = f;
  for (int k = 0; k < n; ++k) {
    if (fanin_types[k] == NodeType::kEx) continue;
    TruthTable not_obs = ~f.boolean_difference(k);
    TruthTable term(n);
    switch (fanin_types[k]) {
      case NodeType::kOne:
        term = TruthTable::variable(n, k) | not_obs;
        break;
      case NodeType::kZero:
        term = ~TruthTable::variable(n, k) | not_obs;
        break;
      case NodeType::kDc:
        term = not_obs;
        break;
      case NodeType::kEx:
        term = TruthTable::ones(n);
        break;
    }
    feasible &= term;
  }

  // Extract an irredundant cover of the feasible function and order its
  // cubes by probability mass per literal so the caller can truncate.
  Sop cover = feasible.isop();
  if (fanin_probs != nullptr) {
    // Sanitize the probabilities once up front: a value outside [0,1] —
    // in particular NaN, under which every comparison is false and a
    // comparator stops being a strict weak ordering (undefined behaviour
    // in the sort) — is clamped; NaN maps to the uninformative 0.5.
    std::vector<double> probs(fanin_probs->begin(), fanin_probs->end());
    for (double& p : probs) {
      p = std::isnan(p) ? 0.5 : std::clamp(p, 0.0, 1.0);
    }
    // Each cube's key is computed once (not per comparison) and ties break
    // on the cube's position in the isop cover: a total order, so the
    // selection downstream is deterministic.
    std::vector<Cube> cubes = cover.cubes();
    std::vector<std::pair<double, size_t>> keyed(cubes.size());
    for (size_t i = 0; i < cubes.size(); ++i) {
      keyed[i] = {cube_probability(cubes[i], probs), i};
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const std::pair<double, size_t>& a,
                 const std::pair<double, size_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    std::vector<Cube> ordered;
    ordered.reserve(cubes.size());
    for (const auto& [key, index] : keyed) {
      ordered.push_back(std::move(cubes[index]));
    }
    cover = Sop(cover.num_vars(), std::move(ordered));
  }
  return cover;
}

}  // namespace apx
