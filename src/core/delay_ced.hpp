// CED coverage against delay (transition) faults — the paper's future-work
// item (i). The same approximate check-symbol generator and checkers are
// reused unchanged: a transition fault manifests at capture time as a
// unidirectional error at the functional outputs, which the 0/1-approximate
// checkers flag exactly as they do for stuck-at faults.
#pragma once

#include "core/ced.hpp"
#include "sim/transition_fault.hpp"

namespace apx {

struct DelayCoverageOptions {
  int num_fault_samples = 1000;
  int words_per_fault = 4;
  uint64_t seed = 0xDE1A;
  /// Also sample slow transitions on the PI fanout stems (a real defect
  /// site on any speed-path). In an exact-duplicate CED a PI-stem fault is
  /// common mode — the functional circuit and the check-symbol generator
  /// see the same stale input, so such faults are structurally undetectable
  /// there; set false to measure gate-level coverage only.
  bool include_pi_stems = true;
};

/// Monte-Carlo transition-fault injection over the functional gates of a
/// CED design, using random launch/capture pattern pairs.
CoverageResult evaluate_delay_fault_coverage(
    const CedDesign& ced, const DelayCoverageOptions& options = {});

}  // namespace apx
