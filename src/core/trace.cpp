#include "core/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

namespace apx::trace {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Event {
  const char* name;
  uint64_t start_ns;
  uint64_t dur_ns;
  uint64_t self_ns;
};

struct Frame {
  const char* name;
  uint64_t start_ns;
  uint64_t child_ns;  // time spent in already-closed nested spans
};

struct ThreadLog {
  int tid = 0;
  std::mutex mutex;           // append (owner) vs snapshot (exporter)
  std::vector<Event> events;  // guarded by mutex
  std::vector<Frame> stack;   // touched by the owning thread only
};

struct Registry {
  std::mutex mutex;
  // shared_ptr: a log must survive both its thread (which may exit) and
  // any exporter holding a reference.
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::vector<Counter*> counters;
  uint64_t origin_ns = now_ns();
  int next_tid = 1;
};

Registry& registry() {
  // Leaked: worker threads and atexit exporters may outlive every static
  // destructor.
  static Registry* r = new Registry();
  return *r;
}

namespace {

ThreadLog* thread_log() {
  thread_local std::shared_ptr<ThreadLog> log = [] {
    auto l = std::make_shared<ThreadLog>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    l->tid = r.next_tid++;
    r.logs.push_back(l);
    return l;
  }();
  return log.get();
}

}  // namespace

ThreadLog* begin_span(const char* name) {
  ThreadLog* log = thread_log();
  log->stack.push_back(Frame{name, now_ns(), 0});
  return log;
}

void end_span(ThreadLog* log) {
  const uint64_t now = now_ns();
  Frame f = log->stack.back();
  log->stack.pop_back();
  const uint64_t dur = now - f.start_ns;
  if (!log->stack.empty()) log->stack.back().child_ns += dur;
  std::lock_guard<std::mutex> lock(log->mutex);
  log->events.push_back(
      Event{f.name, f.start_ns, dur, dur - std::min(dur, f.child_ns)});
}

}  // namespace detail

namespace {

// The APX_TRACE contract from the header: non-empty and != "0" enables;
// any value other than "1" doubles as an exit-time Chrome-trace path.
struct EnvInit {
  EnvInit() {
    const char* v = std::getenv("APX_TRACE");
    if (v == nullptr || *v == '\0' || std::string_view(v) == "0") return;
    set_trace_enabled(true);
    if (std::string_view(v) != "1") {
      static std::string path;
      path = v;
      std::atexit([] { write_chrome_trace(path); });
    }
  }
};
EnvInit env_init;

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

const char* kind_name(CounterKind k) {
  return k == CounterKind::kMonotonic ? "monotonic" : "gauge";
}

}  // namespace

void set_trace_enabled(bool on) {
  detail::registry();  // materialize before concurrent instrumented use
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(const char* name, CounterKind kind) {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (Counter* c : r.counters) {
    if (c->name() == name) return *c;
  }
  // Leaked alongside the registry: counter references must stay valid for
  // the process lifetime.
  r.counters.push_back(new Counter(name, kind));
  return *r.counters.back();
}

std::vector<PhaseStat> phase_summary() {
  detail::Registry& r = detail::registry();
  std::map<std::string, PhaseStat> by_name;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& log : r.logs) {
      std::lock_guard<std::mutex> log_lock(log->mutex);
      for (const detail::Event& e : log->events) {
        PhaseStat& p = by_name[e.name];
        p.name = e.name;
        ++p.count;
        p.total_ms += static_cast<double>(e.dur_ns) / 1e6;
        p.self_ms += static_cast<double>(e.self_ns) / 1e6;
      }
    }
  }
  std::vector<PhaseStat> result;
  result.reserve(by_name.size());
  for (auto& [name, stat] : by_name) result.push_back(std::move(stat));
  std::sort(result.begin(), result.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  return result;
}

std::vector<CounterStat> counter_summary() {
  detail::Registry& r = detail::registry();
  std::vector<CounterStat> result;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    result.reserve(r.counters.size());
    for (const Counter* c : r.counters) {
      result.push_back(CounterStat{c->name(), c->kind(), c->value()});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const CounterStat& a, const CounterStat& b) {
              return a.name < b.name;
            });
  return result;
}

void write_profile(std::FILE* out) {
  std::vector<PhaseStat> phases = phase_summary();
  std::fprintf(out, "%-36s %8s %12s %12s\n", "phase", "count", "total ms",
               "self ms");
  for (const PhaseStat& p : phases) {
    std::fprintf(out, "%-36s %8lld %12.3f %12.3f\n", p.name.c_str(),
                 static_cast<long long>(p.count), p.total_ms, p.self_ms);
  }
  std::vector<CounterStat> counters = counter_summary();
  if (!counters.empty()) {
    std::fprintf(out, "%-36s %33s\n", "counter", "value");
    for (const CounterStat& c : counters) {
      std::fprintf(out, "%-36s %33lld\n", c.name.c_str(),
                   static_cast<long long>(c.value));
    }
  }
}

std::string summary_json() {
  std::string out = "{\"phases\": [";
  bool first = true;
  char buf[128];
  for (const PhaseStat& p : phase_summary()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    json_escape_into(out, p.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"count\": %lld, \"total_ms\": %.3f, "
                  "\"self_ms\": %.3f}",
                  static_cast<long long>(p.count), p.total_ms, p.self_ms);
    out += buf;
  }
  out += "], \"counters\": [";
  first = true;
  for (const CounterStat& c : counter_summary()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    json_escape_into(out, c.name);
    std::snprintf(buf, sizeof buf, "\", \"kind\": \"%s\", \"value\": %lld}",
                  kind_name(c.kind), static_cast<long long>(c.value));
    out += buf;
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  detail::Registry& r = detail::registry();
  std::fprintf(f, "{\"traceEvents\": [");
  bool first = true;
  uint64_t last_end_ns = 0;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    const uint64_t origin = r.origin_ns;
    for (const auto& log : r.logs) {
      std::lock_guard<std::mutex> log_lock(log->mutex);
      for (const detail::Event& e : log->events) {
        const uint64_t rel =
            e.start_ns >= origin ? e.start_ns - origin : 0;
        last_end_ns = std::max(last_end_ns, rel + e.dur_ns);
        std::fprintf(f,
                     "%s\n  {\"name\": \"%s\", \"cat\": \"apx\", "
                     "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                     "\"pid\": 1, \"tid\": %d}",
                     first ? "" : ",", e.name,
                     static_cast<double>(rel) / 1e3,
                     static_cast<double>(e.dur_ns) / 1e3, log->tid);
        first = false;
      }
    }
  }
  for (const CounterStat& c : counter_summary()) {
    std::fprintf(f,
                 "%s\n  {\"name\": \"%s\", \"cat\": \"apx\", "
                 "\"ph\": \"C\", \"ts\": %.3f, \"pid\": 1, "
                 "\"args\": {\"value\": %lld}}",
                 first ? "" : ",", c.name.c_str(),
                 static_cast<double>(last_end_ns) / 1e3,
                 static_cast<long long>(c.value));
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

void reset() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& log : r.logs) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
  }
  for (Counter* c : r.counters) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  r.origin_ns = detail::now_ns();
}

}  // namespace apx::trace
