// Cube selection (paper Sec. 2.1.2): the two techniques that reduce a node's
// phase-matched SOP while respecting the type assignment.
//
//  * Exact selection keeps only cubes that conform to every fanin's type;
//    by the paper's theorem this guarantees a correct approximation.
//  * ODC-based selection computes the local feasible subspace
//    F * prod_i (x_i^sigma_i + ~Obs_{x_i}) on the node's local truth table
//    and re-extracts cubes from it (richer space, correctness no longer
//    guaranteed under multiple simultaneous fanin bit flips).
//
// Both operate on the phase-matched SOP: the on-set SOP for type-1 nodes and
// the off-set (complement) SOP for type-0 nodes.
#pragma once

#include <optional>
#include <vector>

#include "core/approx_types.hpp"
#include "network/network.hpp"
#include "sop/sop.hpp"

namespace apx {

/// Does `cube` conform to the fanin types (paper's conformance rule)?
///   type EX: any literal;  type DC: only '-';
///   type 0:  '0' or '-';   type 1:  '1' or '-'.
bool cube_conforms(const Cube& cube, const std::vector<NodeType>& fanin_types);

/// Exact cube selection: the subset of `phase_sop`'s cubes conforming to
/// the fanin types.
Sop exact_cube_selection(const Sop& phase_sop,
                         const std::vector<NodeType>& fanin_types);

/// ODC-based cube selection. `phase_sop` is the node's phase-matched SOP
/// over its fanins; fanin_types drive the conformance terms. Requires the
/// node to have at most kMaxLocalVars fanins; returns nullopt beyond that
/// (callers fall back to exact selection).
///
/// `fanin_probs`, when provided, weights cube significance for the greedy
/// ordering of the result cover (most probable cubes first).
std::optional<Sop> odc_cube_selection(
    const Sop& phase_sop, const std::vector<NodeType>& fanin_types,
    const std::vector<double>* fanin_probs = nullptr);

/// Probability that a cube is active under independent fanin signal
/// probabilities (the significance measure of the iterative algorithm's
/// approximation stage).
double cube_probability(const Cube& cube, const std::vector<double>& probs);

}  // namespace apx
