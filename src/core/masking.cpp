#include "core/masking.hpp"

#include <algorithm>
#include <random>

#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace apx {

MaskingDesign build_masking_design(
    const Network& original, const Network& checkgen,
    const std::vector<ApproxDirection>& dirs) {
  MaskingDesign design;
  design.ced = build_ced_design(original, checkgen, dirs);
  Network& net = design.ced.design;

  // Recover each output's check-symbol signal X from the checker gates.
  // build_approx_checker emits, in PO order, [NOT(Y), AND(X, Y)] for a
  // 0-approximation and [NOR(X, Y)] for a 1-approximation (rail1 is Y
  // itself), before any two-rail tree cells — so a single forward scan of
  // checker_nodes yields X as the first fanin of each output's gate.
  std::vector<NodeId> check_outputs(original.num_pos(), kNullNode);
  {
    size_t idx = 0;
    const auto& nodes = design.ced.checker_nodes;
    for (int o = 0; o < original.num_pos(); ++o) {
      if (dirs[o] == ApproxDirection::kZeroApprox) {
        // Gates emitted: NOT(Y) then AND(X, Y).
        NodeId and_gate = nodes.at(idx + 1);
        check_outputs[o] = net.node(and_gate).fanins[0];
        idx += 2;
      } else {
        // Gates emitted: NOR(X, Y) only (rail1 is Y itself).
        NodeId nor_gate = nodes.at(idx);
        check_outputs[o] = net.node(nor_gate).fanins[0];
        idx += 1;
      }
    }
  }

  for (int o = 0; o < original.num_pos(); ++o) {
    NodeId y = design.ced.functional_outputs[o];
    NodeId x = check_outputs[o];
    NodeId corrected =
        dirs[o] == ApproxDirection::kZeroApprox
            ? net.add_and(y, x)   // X=0 forces the output low: masks 0->1
            : net.add_or(y, x);   // X=1 forces the output high: masks 1->0
    design.masked_outputs.push_back(corrected);
    design.masking_nodes.push_back(corrected);
    net.add_po(original.po(o).name + "_masked", corrected);
  }
  net.check();
  return design;
}

MaskingResult evaluate_masking(const MaskingDesign& design,
                               const CoverageOptions& options) {
  MaskingResult result;
  const CedDesign& ced = design.ced;
  if (ced.functional_nodes.empty()) return result;
  std::mt19937_64 rng(options.seed);
  Simulator sim(ced.design);

  const int W = options.words_per_fault;
  std::vector<uint64_t> raw_row(W), masked_row(W);
  for (int s = 0; s < options.num_fault_samples; ++s) {
    NodeId site = ced.functional_nodes[rng() % ced.functional_nodes.size()];
    StuckFault fault{site, static_cast<bool>(rng() & 1)};
    PatternSet patterns = PatternSet::random(ced.design.num_pis(), W, rng());
    sim.run(patterns);
    sim.inject(fault);
    std::fill(raw_row.begin(), raw_row.end(), 0);
    std::fill(masked_row.begin(), masked_row.end(), 0);
    for (size_t o = 0; o < ced.functional_outputs.size(); ++o) {
      NodeId y = ced.functional_outputs[o];
      NodeId m = design.masked_outputs[o];
      accumulate_xor_or(raw_row.data(), sim.value(y).data(),
                        sim.faulty_value(y).data(), W);
      // The corrected output is judged against the fault-free *raw*
      // function (the masked output equals it in fault-free operation).
      accumulate_xor_or(masked_row.data(), sim.value(y).data(),
                        sim.faulty_value(m).data(), W);
    }
    result.raw_errors += popcount_words(raw_row.data(), W, ~0ULL);
    result.masked_errors += popcount_words(masked_row.data(), W, ~0ULL);
    result.runs += 64ll * W;
  }
  return result;
}

}  // namespace apx
