// Local observability analysis (paper Sec. 2.1.1): for each node g and each
// of its fanins x, the probability that a 0 (resp. 1) value at x is
// observable at the output of g. Estimated from bit-parallel simulation so
// fanin correlations are captured and arbitrarily wide nodes are supported.
#pragma once

#include <vector>

#include "network/network.hpp"
#include "sim/simulator.hpp"

namespace apx {

struct FaninObservability {
  double obs0 = 0.0;  ///< P[x = 0 and flipping x changes g]
  double obs1 = 0.0;  ///< P[x = 1 and flipping x changes g]

  double total() const { return obs0 + obs1; }
};

/// Per-node, per-fanin local observabilities.
class ObservabilityAnalysis {
 public:
  /// Runs `words`*64 random patterns through `net` and computes local
  /// observabilities for every logic node's fanins.
  ObservabilityAnalysis(const Network& net, int words = 64,
                        uint64_t seed = 0x0B5E11);

  /// Observability of fanin index `k` of node `id`.
  const FaninObservability& fanin_obs(NodeId id, int k) const {
    return obs_[id][k];
  }
  const std::vector<FaninObservability>& node_obs(NodeId id) const {
    return obs_[id];
  }

  /// Signal probability of a node over the same patterns.
  double signal_probability(NodeId id) const { return sig_prob_[id]; }

 private:
  std::vector<std::vector<FaninObservability>> obs_;
  std::vector<double> sig_prob_;
};

}  // namespace apx
