#include "core/checker.hpp"

namespace apx {

TwoRail build_approx_checker(Network& net, NodeId circuit_out,
                             NodeId check_out, ApproxDirection direction) {
  TwoRail pair;
  if (direction == ApproxDirection::kZeroApprox) {
    // Valid space {00, 10, 11}; invalid 01 (X=0, Y=1).
    pair.rail1 = net.add_not(circuit_out);             // ~Y
    pair.rail2 = net.add_and(check_out, circuit_out);  // X & Y
  } else {
    // Valid space {00, 01, 11}; invalid 10 (X=1, Y=0).
    pair.rail1 = circuit_out;  // Y (no gate needed)
    pair.rail2 = net.add_node({check_out, circuit_out}, *Sop::parse(2, "00"),
                              "");  // ~X & ~Y (NOR)
  }
  return pair;
}

TwoRail build_equality_checker(Network& net, NodeId a, NodeId b) {
  TwoRail pair;
  pair.rail1 = a;
  pair.rail2 = net.add_not(b);
  return pair;
}

TwoRail two_rail_cell(Network& net, const TwoRail& a, const TwoRail& b) {
  // z1 = a1 b1 + a2 b2 ; z2 = a1 b2 + a2 b1, decomposed into 2-input gates
  // so the consolidation tree is itself a gate-level circuit.
  TwoRail out;
  out.rail1 = net.add_or(net.add_and(a.rail1, b.rail1),
                         net.add_and(a.rail2, b.rail2));
  out.rail2 = net.add_or(net.add_and(a.rail1, b.rail2),
                         net.add_and(a.rail2, b.rail1));
  return out;
}

TwoRail build_two_rail_tree(Network& net, std::vector<TwoRail> pairs) {
  if (pairs.empty()) {
    TwoRail constant;
    constant.rail1 = net.add_const(false);
    constant.rail2 = net.add_const(true);
    return constant;
  }
  while (pairs.size() > 1) {
    std::vector<TwoRail> next;
    for (size_t i = 0; i + 1 < pairs.size(); i += 2) {
      next.push_back(two_rail_cell(net, pairs[i], pairs[i + 1]));
    }
    if (pairs.size() % 2) next.push_back(pairs.back());
    pairs = std::move(next);
  }
  return pairs[0];
}

}  // namespace apx
