#include "core/tsc_analysis.hpp"

namespace apx {
namespace {

struct Rails {
  bool r1;
  bool r2;
  bool valid() const { return r1 != r2; }
  bool operator==(const Rails& o) const { return r1 == o.r1 && r2 == o.r2; }
};

Rails checker(ApproxDirection dir, bool x, bool y) {
  if (dir == ApproxDirection::kZeroApprox) {
    return {!y, x && y};  // rail1 = ~Y, rail2 = X & Y
  }
  return {y, !x && !y};  // rail1 = Y, rail2 = NOR(X, Y)
}

bool codeword_valid(ApproxDirection dir, bool x, bool y) {
  if (dir == ApproxDirection::kZeroApprox) return !(x == false && y == true);
  return !(x == true && y == false);
}

// Fault sites: indexes into {Y line, X line, rail1 output, rail2 output}.
enum Site { kY = 0, kX = 1, kRail1 = 2, kRail2 = 3 };

Rails faulty_checker(ApproxDirection dir, bool x, bool y, Site site,
                     bool stuck) {
  bool fx = x, fy = y;
  if (site == kY) fy = stuck;
  if (site == kX) fx = stuck;
  Rails r = checker(dir, fx, fy);
  if (site == kRail1) r.r1 = stuck;
  if (site == kRail2) r.r2 = stuck;
  return r;
}

const char* site_name(Site site) {
  switch (site) {
    case kY:
      return "Y";
    case kX:
      return "X";
    case kRail1:
      return "rail1";
    case kRail2:
      return "rail2";
  }
  return "?";
}

}  // namespace

TscReport analyze_approx_checker(ApproxDirection direction) {
  TscReport report;

  // Code-disjointness over the full input space.
  report.code_disjoint = true;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      Rails r = checker(direction, x, y);
      if (codeword_valid(direction, x, y) != r.valid()) {
        report.code_disjoint = false;
      }
    }
  }

  for (Site site : {kY, kX, kRail1, kRail2}) {
    for (bool stuck : {false, true}) {
      CheckerFaultReport fr;
      fr.site = site_name(site);
      fr.stuck_value = stuck;
      fr.self_testing = false;
      fr.fault_secure = true;
      for (int x = 0; x < 2; ++x) {
        for (int y = 0; y < 2; ++y) {
          if (!codeword_valid(direction, x, y)) continue;  // normal op only
          Rails good = checker(direction, x, y);
          Rails bad = faulty_checker(direction, x, y, site, stuck);
          if (!bad.valid()) fr.self_testing = true;
          if (bad.valid() && !(bad == good)) fr.fault_secure = false;
        }
      }
      report.faults.push_back(fr);
    }
  }
  return report;
}

}  // namespace apx
