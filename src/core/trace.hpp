// Low-overhead, thread-safe instrumentation for the CED pipeline: RAII
// scoped spans (nested, per-thread tracks) plus a process-wide named
// counter registry (monotonic and gauge), with three exporters — a
// per-phase summary table, a flat JSON summary, and the Chrome
// chrome://tracing / Perfetto event format.
//
// Cost model: tracing is off by default and the hot-path check is one
// relaxed atomic load. A disabled Span constructs to a null pointer and
// its destructor is a branch — no clock reads, no allocation, no TLS
// registration. A disabled Counter::add is the same single load. Enabled
// spans append to per-thread buffers (two steady_clock reads plus one
// uncontended mutex around the append), so worker threads never contend
// on a shared log; thread ids are small dense integers so task-pool
// workers show up as parallel tracks in the Chrome viewer.
//
// Enabling: set_trace_enabled(true) from code, or the APX_TRACE
// environment variable — any non-empty value other than "0" enables
// tracing at startup, and a value other than "1" is additionally treated
// as a path to write the Chrome trace to at process exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace apx::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
struct ThreadLog;
ThreadLog* begin_span(const char* name);
void end_span(ThreadLog* log);
}  // namespace detail

/// True when tracing is currently enabled (relaxed; instrumentation sites
/// gate themselves on this).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns tracing on or off. Spans already open keep recording to their
/// thread's log; spans constructed while disabled stay no-ops even if
/// tracing is enabled before they close.
void set_trace_enabled(bool on);

/// RAII scoped span. Spans nest per thread (strict LIFO, guaranteed by
/// scoping); the name must outlive the trace (string literals in
/// practice).
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) log_ = detail::begin_span(name);
  }
  ~Span() {
    if (log_ != nullptr) detail::end_span(log_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  detail::ThreadLog* log_ = nullptr;
};

enum class CounterKind : uint8_t {
  kMonotonic,  ///< accumulates deltas (events, items processed)
  kGauge,      ///< tracks a level or high-water mark (peak nodes)
};

/// A named process-wide counter. All mutators are relaxed atomics and
/// no-ops while tracing is disabled; value() always reads.
class Counter {
 public:
  /// Monotonic accumulation.
  void add(int64_t delta) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Gauge store.
  void set(int64_t v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  /// Gauge high-water mark: raises the value to `v` if larger.
  void set_max(int64_t v) {
    if (!enabled()) return;
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  CounterKind kind() const { return kind_; }

 private:
  friend Counter& counter(const char*, CounterKind);
  friend void reset();
  Counter(std::string name, CounterKind kind)
      : name_(std::move(name)), kind_(kind) {}

  std::string name_;
  CounterKind kind_;
  std::atomic<int64_t> value_{0};
};

/// Returns the process-wide counter `name`, creating it on first use; the
/// reference stays valid for the process lifetime. The kind is fixed by
/// the first registration. Cache the reference at hot sites
/// (`static Counter& c = counter("...");`) — the lookup itself takes the
/// registry mutex.
Counter& counter(const char* name,
                 CounterKind kind = CounterKind::kMonotonic);

/// Aggregated view of every span with a given name, across all threads.
/// self_ms excludes time spent in nested spans (of any name).
struct PhaseStat {
  std::string name;
  int64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
};

/// Per-name span aggregation, sorted by total time descending (ties by
/// name). Safe to call while spans are still being recorded.
std::vector<PhaseStat> phase_summary();

struct CounterStat {
  std::string name;
  CounterKind kind = CounterKind::kMonotonic;
  int64_t value = 0;
};

/// Snapshot of every registered counter, sorted by name.
std::vector<CounterStat> counter_summary();

/// Human-readable per-phase + counter table (apxced --profile).
void write_profile(std::FILE* out);

/// Flat JSON summary: {"phases": [...], "counters": [...]}.
std::string summary_json();

/// Writes every recorded span as a Chrome trace-event file ("X" complete
/// events, µs timestamps, one tid per recording thread) plus one final
/// "C" event per counter — loadable in chrome://tracing and Perfetto.
/// Returns false when the file cannot be opened.
bool write_chrome_trace(const std::string& path);

/// Clears all recorded events and zeroes every counter (registrations and
/// thread ids persist). Spans currently open will still record on close.
void reset();

}  // namespace apx::trace
