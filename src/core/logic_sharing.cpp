#include "core/logic_sharing.hpp"

#include <algorithm>
#include <unordered_map>

#include "sat/encode.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

uint64_t signature_of(const WordSpan& words) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (uint64_t w : words) {
    h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void remap_list(std::vector<NodeId>& list, const std::vector<NodeId>& map) {
  std::vector<NodeId> out;
  for (NodeId id : list) {
    if (map[id] != kNullNode) out.push_back(map[id]);
  }
  list = std::move(out);
}

}  // namespace

SharingReport apply_logic_sharing(CedDesign& ced,
                                  const SharingOptions& options) {
  SharingReport report;
  report.checkgen_area_before = static_cast<int>(ced.checkgen_nodes.size());

  Network& net = ced.design;
  Simulator sim(net);
  sim.run(PatternSet::random(net.num_pis(), options.sim_words, options.seed));

  // Candidate index: signature -> functional nodes.
  std::unordered_multimap<uint64_t, NodeId> by_sig;
  for (NodeId f : ced.functional_nodes) {
    by_sig.emplace(signature_of(sim.value(f)), f);
  }

  SatSolver solver;
  std::vector<int> pi_vars;
  for (int i = 0; i < net.num_pis(); ++i) pi_vars.push_back(solver.new_var());
  std::vector<int> var_of = encode_network(solver, net, pi_vars);

  // Provable checkgen -> functional merges, found by signature + SAT.
  std::vector<std::pair<NodeId, NodeId>> provable;
  for (NodeId c : ced.checkgen_nodes) {
    uint64_t sig = signature_of(sim.value(c));
    auto [lo, hi] = by_sig.equal_range(sig);
    for (auto it = lo; it != hi; ++it) {
      NodeId f = it->second;
      if (sim.value(c) != sim.value(f)) continue;  // hash collision
      // Prove equivalence: assume t where t <-> (c XOR f); UNSAT => equal.
      int t = solver.new_var();
      Lit lt(t, false);
      Lit lc(var_of[c], false);
      Lit lf(var_of[f], false);
      solver.add_ternary(~lt, lc, lf);
      solver.add_ternary(~lt, ~lc, ~lf);
      solver.add_ternary(lt, ~lc, lf);
      solver.add_ternary(lt, lc, ~lf);
      SatResult r = solver.solve({lt}, options.sat_conflict_budget);
      if (r == SatResult::kUnsat) {
        provable.push_back({c, f});
        break;
      }
    }
  }

  // Criticality filter (paper: share only *non-critical* nodes). A fault
  // at a shared node corrupts circuit and check function identically and
  // becomes undetectable, so each merge costs the target node's error
  // mass. Estimate that mass by fault injection and keep the cheapest
  // merges within the budget.
  std::unordered_map<NodeId, NodeId> merge;
  {
    std::unordered_map<NodeId, double> mass;
    double total_mass = 0.0;
    Simulator fault_sim(net);
    PatternSet patterns = PatternSet::random(
        net.num_pis(), options.criticality_words, options.seed ^ 0xC417);
    fault_sim.run(patterns);
    const int W = options.criticality_words;
    std::vector<uint64_t> err_row(W);
    auto error_mass = [&](NodeId site) {
      int64_t m = 0;
      for (bool stuck : {false, true}) {
        fault_sim.inject({site, stuck});
        std::fill(err_row.begin(), err_row.end(), 0);
        for (NodeId out : ced.functional_outputs) {
          accumulate_xor_or(err_row.data(), fault_sim.value(out).data(),
                            fault_sim.faulty_value(out).data(), W);
        }
        m += popcount_words(err_row.data(), W, ~0ULL);
      }
      return static_cast<double>(m);
    };
    for (NodeId f : ced.functional_nodes) {
      double m = error_mass(f);
      mass[f] = m;
      total_mass += m;
    }
    std::sort(provable.begin(), provable.end(),
              [&](const auto& a, const auto& b) {
                return mass[a.second] < mass[b.second];
              });
    double budget = options.max_error_mass * total_mass;
    double spent = 0.0;
    for (const auto& [c, f] : provable) {
      if (spent + mass[f] > budget && !merge.empty()) break;
      spent += mass[f];
      merge[c] = f;
    }
  }
  if (merge.empty()) {
    report.checkgen_area_after = report.checkgen_area_before;
    return report;
  }
  report.merged_nodes = static_cast<int>(merge.size());

  // Rewire every fanin reference (and the error-pair rails) through merges.
  auto resolve = [&](NodeId id) {
    auto it = merge.find(id);
    return it == merge.end() ? id : it->second;
  };
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (NodeId& f : net.node(id).fanins) f = resolve(f);
  }
  for (int o = 0; o < net.num_pos(); ++o) {
    net.set_po_driver(o, resolve(net.po(o).driver));
  }
  ced.error_pair.rail1 = resolve(ced.error_pair.rail1);
  ced.error_pair.rail2 = resolve(ced.error_pair.rail2);
  for (NodeId& id : ced.functional_outputs) id = resolve(id);

  std::vector<NodeId> map = net.cleanup();
  remap_list(ced.functional_nodes, map);
  remap_list(ced.checkgen_nodes, map);
  remap_list(ced.checker_nodes, map);
  for (NodeId& id : ced.functional_outputs) id = map[id];
  ced.error_pair.rail1 = map[ced.error_pair.rail1];
  ced.error_pair.rail2 = map[ced.error_pair.rail2];

  report.checkgen_area_after = static_cast<int>(ced.checkgen_nodes.size());
  net.check();
  return report;
}

}  // namespace apx
