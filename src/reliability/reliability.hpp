// Reliability analysis: estimates, for every primary output, the rates of
// 0->1 and 1->0 errors under the single-stuck-at fault model with uniform
// gate failure probability and uniformly random inputs.
//
// The paper (Sec. 3) uses the analytic observability-based method of
// Choudhury & Mohanram (DATE 2007) [14]; this module estimates the same
// per-output quantities by Monte-Carlo fault injection (see DESIGN.md
// substitutions). Downstream, only the dominant error direction and the
// skew magnitude are consumed when choosing the 0-/1-approximation per
// output and when computing the maximum attainable CED coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "sim/fault_engine.hpp"
#include "sim/simulator.hpp"

namespace apx {

/// Direction of the dominant error at an output, hence the approximation
/// type to synthesize for it (paper Sec. 3: 0->1 dominant -> 0-approximate
/// check function, 1->0 dominant -> 1-approximate).
enum class ApproxDirection : uint8_t {
  kZeroApprox,  ///< check function X with X=0 => Y=0; detects 0->1 errors
  kOneApprox,   ///< check function X with X=1 => Y=1; detects 1->0 errors
};

struct OutputErrorProfile {
  /// P[output erroneous 0->1 | run], over (fault, vector) runs.
  double rate_0_to_1 = 0.0;
  /// P[output erroneous 1->0 | run].
  double rate_1_to_0 = 0.0;

  double total_rate() const { return rate_0_to_1 + rate_1_to_0; }
  ApproxDirection dominant() const {
    return rate_0_to_1 >= rate_1_to_0 ? ApproxDirection::kZeroApprox
                                      : ApproxDirection::kOneApprox;
  }
  /// Fraction of this output's errors that the dominant direction covers.
  double skew() const {
    double t = total_rate();
    if (t <= 0.0) return 1.0;
    return std::max(rate_0_to_1, rate_1_to_0) / t;
  }
};

struct ReliabilityReport {
  std::vector<OutputErrorProfile> outputs;  // indexed by PO
  /// P[some PO erroneous | run] — the denominator of CED coverage.
  double any_output_error_rate = 0.0;
  /// P[some PO erroneous in its dominant direction | run] /
  /// P[some PO erroneous | run] — the paper's "Max. CED coverage" bound
  /// when every output is protected in its dominant direction.
  double max_ced_coverage = 0.0;
  int64_t runs = 0;
};

struct ReliabilityOptions {
  /// Number of (fault, 64-vector-word) batches to sample. Total runs =
  /// batches * 64 * vectors_words... kept simple: runs = batches * 64.
  int num_fault_samples = 2000;
  /// Words of random vectors per sampled fault (64 vectors per word).
  int words_per_fault = 4;
  /// Fault model driving the error-rate campaign. kSingleStuckAt takes the
  /// exact legacy code path (bit-identical results); the other models use
  /// the engine's stock samplers over the logic nodes.
  FaultModel model = FaultModel::kSingleStuckAt;
  /// Simultaneous stuck-at sites per sample under kMultiStuckAt.
  int sites_per_fault = 2;
  /// Forced vector-window length under kTransientBurst.
  int burst_vectors = 16;
  /// Fault samples amortizing one shared golden simulation in the
  /// FaultSimEngine (see src/sim/fault_engine.hpp).
  int faults_per_batch = 64;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count()
  /// (APX_THREADS policy). Results are bit-identical for any value.
  int num_threads = 0;
  uint64_t seed = 0x5EED;
};

/// Runs Monte-Carlo fault injection on `net` and aggregates per-output
/// error-direction statistics.
ReliabilityReport analyze_reliability(const Network& net,
                                      const ReliabilityOptions& options = {});

/// Chooses the approximation direction for every PO from a report.
std::vector<ApproxDirection> choose_directions(const ReliabilityReport& r);

}  // namespace apx
