#include "reliability/reliability.hpp"

#include <bit>
#include <random>

namespace apx {

ReliabilityReport analyze_reliability(const Network& net,
                                      const ReliabilityOptions& options) {
  ReliabilityReport report;
  report.outputs.assign(net.num_pos(), {});
  std::vector<StuckFault> faults = enumerate_faults(net);
  if (faults.empty() || net.num_pos() == 0) return report;

  std::mt19937_64 rng(options.seed);
  Simulator sim(net);

  std::vector<int64_t> count01(net.num_pos(), 0);
  std::vector<int64_t> count10(net.num_pos(), 0);
  int64_t any_error = 0;
  int64_t dominant_detectable = 0;
  int64_t runs = 0;

  // The max-coverage statistic needs the dominant directions, which are only
  // known after the direction rates: two passes over the identical sample
  // stream (rng_copy replays the first pass exactly).
  const int num_samples = options.num_fault_samples;
  std::mt19937_64 rng_copy = rng;

  for (int s = 0; s < num_samples; ++s) {
    const StuckFault& fault = faults[rng() % faults.size()];
    PatternSet patterns =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng());
    sim.run(patterns);
    sim.inject(fault);
    for (int w = 0; w < options.words_per_fault; ++w) {
      uint64_t any = 0;
      for (int o = 0; o < net.num_pos(); ++o) {
        NodeId drv = net.po(o).driver;
        uint64_t g = sim.value(drv)[w];
        uint64_t f = sim.faulty_value(drv)[w];
        uint64_t e01 = ~g & f;
        uint64_t e10 = g & ~f;
        count01[o] += std::popcount(e01);
        count10[o] += std::popcount(e10);
        any |= e01 | e10;
      }
      any_error += std::popcount(any);
      runs += 64;
    }
  }

  for (int o = 0; o < net.num_pos(); ++o) {
    report.outputs[o].rate_0_to_1 =
        static_cast<double>(count01[o]) / static_cast<double>(runs);
    report.outputs[o].rate_1_to_0 =
        static_cast<double>(count10[o]) / static_cast<double>(runs);
  }
  std::vector<ApproxDirection> dirs;
  for (const auto& p : report.outputs) dirs.push_back(p.dominant());

  // Second pass, identical sample stream: count runs where some PO erred in
  // its dominant (protected) direction.
  for (int s = 0; s < num_samples; ++s) {
    const StuckFault& fault = faults[rng_copy() % faults.size()];
    PatternSet patterns =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng_copy());
    sim.run(patterns);
    sim.inject(fault);
    for (int w = 0; w < options.words_per_fault; ++w) {
      uint64_t dominant = 0;
      for (int o = 0; o < net.num_pos(); ++o) {
        NodeId drv = net.po(o).driver;
        uint64_t g = sim.value(drv)[w];
        uint64_t f = sim.faulty_value(drv)[w];
        dominant |= (dirs[o] == ApproxDirection::kZeroApprox) ? (~g & f)
                                                              : (g & ~f);
      }
      dominant_detectable += std::popcount(dominant);
    }
  }

  report.runs = runs;
  report.any_output_error_rate =
      static_cast<double>(any_error) / static_cast<double>(runs);
  report.max_ced_coverage =
      any_error > 0 ? static_cast<double>(dominant_detectable) /
                          static_cast<double>(any_error)
                    : 0.0;
  return report;
}

std::vector<ApproxDirection> choose_directions(const ReliabilityReport& r) {
  std::vector<ApproxDirection> dirs;
  dirs.reserve(r.outputs.size());
  for (const auto& p : r.outputs) dirs.push_back(p.dominant());
  return dirs;
}

}  // namespace apx
