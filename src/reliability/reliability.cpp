#include "reliability/reliability.hpp"

#include "core/task_pool.hpp"
#include "sim/fault_engine.hpp"
#include "sim/kernels.hpp"

namespace apx {

ReliabilityReport analyze_reliability(const Network& net,
                                      const ReliabilityOptions& options) {
  ReliabilityReport report;
  report.outputs.assign(net.num_pos(), {});
  std::vector<StuckFault> faults = enumerate_faults(net);
  if (faults.empty() || net.num_pos() == 0 || options.num_fault_samples <= 0) {
    return report;
  }

  FaultSimEngine engine(net);
  CampaignOptions copt;
  copt.num_fault_samples = options.num_fault_samples;
  copt.words_per_fault = options.words_per_fault;
  copt.faults_per_batch = options.faults_per_batch;
  copt.num_threads = options.num_threads;
  copt.seed = options.seed;
  auto sampler = [&faults](uint64_t sample_seed) {
    return faults[SplitMix64(sample_seed).next() % faults.size()];
  };
  // Model dispatch: both passes replay the identical sample stream, so the
  // fault-agnostic accounting bodies below are shared; only the sampler
  // (and the visitor's fault type) changes with the model.
  FaultSimEngine::SpecSampler spec_sampler;
  if (options.model != FaultModel::kSingleStuckAt) {
    std::vector<NodeId> site_nodes;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (net.node(id).kind == NodeKind::kLogic) site_nodes.push_back(id);
    }
    copt.model = options.model;
    copt.sites_per_fault = options.sites_per_fault;
    copt.burst_vectors = options.burst_vectors;
    spec_sampler = FaultSimEngine::make_sampler(options.model,
                                                std::move(site_nodes), copt);
  }
  auto run_pass = [&](const std::function<void(int, const FaultView&)>& body) {
    if (options.model == FaultModel::kSingleStuckAt) {
      engine.run_campaign(copt, sampler,
                          [&](int i, const StuckFault&, const FaultView& v) {
                            body(i, v);
                          });
    } else {
      engine.run_campaign(copt, spec_sampler,
                          [&](int i, const FaultSpec&, const FaultView& v) {
                            body(i, v);
                          });
    }
  };

  const int P = net.num_pos();
  const int slots = resolve_thread_option(options.num_threads);
  const int64_t runs = static_cast<int64_t>(options.num_fault_samples) *
                       options.words_per_fault * 64;

  // Lock-free accumulation: each pool slot owns a private row of exact
  // integer counters (strided to its slot index), merged in slot order
  // after the campaign. Integer sums are exact and commutative, so the
  // totals are bit-identical for any thread count / completion order —
  // the ordered merge is belt-and-braces for that contract.
  std::vector<int64_t> slot01(static_cast<size_t>(slots) * P, 0);
  std::vector<int64_t> slot10(static_cast<size_t>(slots) * P, 0);
  std::vector<int64_t> slot_any(slots, 0);

  // Pass 1: per-output directional error rates. The max-coverage statistic
  // needs the dominant directions, which are only known after this pass;
  // pass 2 replays the identical sample stream (the campaign's per-index
  // seed derivation makes the replay exact by construction).
  // Per-worker "some PO differs" rows: e01 | e10 == g ^ f, folded across
  // outputs by the accumulate kernel and counted once per sample.
  std::vector<std::vector<uint64_t>> any_scratch(slots);
  run_pass([&](int, const FaultView& v) {
    const int slot = v.worker_slot();
    int64_t* c01 = &slot01[static_cast<size_t>(slot) * P];
    int64_t* c10 = &slot10[static_cast<size_t>(slot) * P];
    const int W = v.num_words();
    const uint64_t tail = v.word_mask(W - 1);
    std::vector<uint64_t>& any_row = any_scratch[slot];
    any_row.assign(static_cast<size_t>(W), 0);
    for (int o = 0; o < P; ++o) {
      NodeId drv = net.po(o).driver;
      const uint64_t* g = v.golden(drv);
      const uint64_t* f = v.faulty(drv);
      c01[o] += popcount_andnot(g, f, W, tail);  // ~g & f
      c10[o] += popcount_andnot(f, g, W, tail);  // g & ~f
      accumulate_xor_or(any_row.data(), g, f, W);
    }
    slot_any[slot] += popcount_words(any_row.data(), W, tail);
  });

  std::vector<int64_t> count01(P, 0), count10(P, 0);
  int64_t any_error = 0;
  for (int s = 0; s < slots; ++s) {  // ordered merge over slot index
    for (int o = 0; o < P; ++o) {
      count01[o] += slot01[static_cast<size_t>(s) * P + o];
      count10[o] += slot10[static_cast<size_t>(s) * P + o];
    }
    any_error += slot_any[s];
  }

  for (int o = 0; o < P; ++o) {
    report.outputs[o].rate_0_to_1 =
        static_cast<double>(count01[o]) / static_cast<double>(runs);
    report.outputs[o].rate_1_to_0 =
        static_cast<double>(count10[o]) / static_cast<double>(runs);
  }
  std::vector<ApproxDirection> dirs;
  for (const auto& p : report.outputs) dirs.push_back(p.dominant());

  // Pass 2, identical sample stream: count runs where some PO erred in its
  // dominant (protected) direction.
  std::vector<int64_t> slot_dominant(slots, 0);
  run_pass([&](int, const FaultView& v) {
    const int slot = v.worker_slot();
    const int W = v.num_words();
    std::vector<uint64_t>& dom_row = any_scratch[slot];
    dom_row.assign(static_cast<size_t>(W), 0);
    for (int o = 0; o < P; ++o) {
      NodeId drv = net.po(o).driver;
      const uint64_t* g = v.golden(drv);
      const uint64_t* f = v.faulty(drv);
      if (dirs[o] == ApproxDirection::kZeroApprox) {
        accumulate_andnot_or(dom_row.data(), g, f, W);  // ~g & f
      } else {
        accumulate_andnot_or(dom_row.data(), f, g, W);  // g & ~f
      }
    }
    slot_dominant[slot] +=
        popcount_words(dom_row.data(), W, v.word_mask(W - 1));
  });
  int64_t dominant_detectable = 0;
  for (int s = 0; s < slots; ++s) dominant_detectable += slot_dominant[s];

  report.runs = runs;
  report.any_output_error_rate =
      static_cast<double>(any_error) / static_cast<double>(runs);
  report.max_ced_coverage =
      any_error > 0 ? static_cast<double>(dominant_detectable) /
                          static_cast<double>(any_error)
                    : 0.0;
  return report;
}

std::vector<ApproxDirection> choose_directions(const ReliabilityReport& r) {
  std::vector<ApproxDirection> dirs;
  dirs.reserve(r.outputs.size());
  for (const auto& p : r.outputs) dirs.push_back(p.dominant());
  return dirs;
}

}  // namespace apx
