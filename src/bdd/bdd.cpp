#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apx {

namespace {

// Smallest power of two >= n (and >= floor_cap).
size_t pow2_at_least(size_t n, size_t floor_cap) {
  size_t cap = floor_cap;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

BddManager::BddManager(int num_vars, size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(max_nodes) {
  // Terminal nodes: index 0 = false, 1 = true. Terminals use the sentinel
  // variable num_vars (below every real variable in the order).
  nodes_.push_back({num_vars_, 0, 0});
  nodes_.push_back({num_vars_, 1, 1});
  unique_slots_.assign(1024, kInvalidRef);
  // Direct-mapped lossy cache: sized to the budget (bounded at 2^20
  // entries = 16 MB) so big managers don't thrash on a tiny cache.
  size_t ite_cap = std::clamp(pow2_at_least(max_nodes / 4, size_t{1} << 12),
                              size_t{1} << 12, size_t{1} << 20);
  ite_cache_.assign(ite_cap, IteEntry{});
}

void BddManager::unique_insert(Ref id) {
  const size_t mask = unique_slots_.size() - 1;
  const BddNode& n = nodes_[id];
  size_t idx = hash_triple(n.var, n.lo, n.hi) & mask;
  while (unique_slots_[idx] != kInvalidRef) idx = (idx + 1) & mask;
  unique_slots_[idx] = id;
}

void BddManager::unique_grow() {
  std::vector<Ref> old = std::move(unique_slots_);
  unique_slots_.assign(old.size() * 2, kInvalidRef);
  // Every non-terminal node is (exactly once) in the table; re-inserting
  // from the arena avoids touching the old slot array's order.
  for (Ref id = 2; id < static_cast<Ref>(nodes_.size()); ++id) {
    unique_insert(id);
  }
}

BddManager::Ref BddManager::make_node(int32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const size_t mask = unique_slots_.size() - 1;
  size_t idx = hash_triple(var, lo, hi) & mask;
  ++stats_.unique_lookups;
  while (true) {
    ++stats_.unique_probes;
    Ref slot = unique_slots_[idx];
    if (slot == kInvalidRef) break;
    const BddNode& n = nodes_[slot];
    if (n.var == var && n.lo == lo && n.hi == hi) return slot;
    idx = (idx + 1) & mask;
  }
  if (nodes_.size() >= max_nodes_) throw BddOverflow();
  Ref id = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_slots_[idx] = id;
  ++unique_count_;
  if ((unique_count_ + 1) * 10 >= unique_slots_.size() * 7) unique_grow();
  return id;
}

BddManager::Ref BddManager::var(int v) {
  assert(v >= 0 && v < num_vars_);
  return make_node(v, 0, 1);
}

BddManager::Ref BddManager::literal(int v, bool positive) {
  return positive ? var(v) : make_node(v, 1, 0);
}

BddManager::Ref BddManager::bdd_not(Ref f) { return ite_rec(f, 0, 1); }
BddManager::Ref BddManager::bdd_and(Ref f, Ref g) { return ite_rec(f, g, 0); }
BddManager::Ref BddManager::bdd_or(Ref f, Ref g) { return ite_rec(f, 1, g); }
BddManager::Ref BddManager::bdd_xor(Ref f, Ref g) {
  return ite_rec(f, bdd_not(g), g);
}
BddManager::Ref BddManager::bdd_ite(Ref f, Ref g, Ref h) {
  return ite_rec(f, g, h);
}

BddManager::Ref BddManager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  const size_t mask = ite_cache_.size() - 1;
  const size_t idx =
      mix64(static_cast<uint64_t>(f) * 0x9E3779B97F4A7C15ULL +
            ((static_cast<uint64_t>(g) << 32) | h)) &
      mask;
  IteEntry& entry = ite_cache_[idx];
  if (entry.f == f && entry.g == g && entry.h == h) {
    ++stats_.ite_hits;
    return entry.result;
  }
  ++stats_.ite_misses;

  int32_t top = std::min({var_of(f), var_of(g), var_of(h)});
  auto cof = [&](Ref x, bool hi) -> Ref {
    if (var_of(x) != top) return x;
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  Ref lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  Ref result = make_node(top, lo, hi);
  // Lossy cache: overwrite whatever the recursive calls left in this slot.
  IteEntry& out = ite_cache_[idx];
  out.f = f;
  out.g = g;
  out.h = h;
  out.result = result;
  return out.result;
}

bool BddManager::implies(Ref f, Ref g) { return bdd_and(f, bdd_not(g)) == 0; }

void BddManager::begin_scratch_pass() const {
  if (stamp_.size() < nodes_.size()) stamp_.resize(nodes_.size(), 0);
  if (frac_memo_.size() < nodes_.size()) frac_memo_.resize(nodes_.size());
  if (++stamp_epoch_ == 0) {  // epoch wrapped: invalidate everything
    std::fill(stamp_.begin(), stamp_.end(), 0);
    stamp_epoch_ = 1;
  }
}

double BddManager::sat_fraction_rec(Ref f) {
  if (f == 0) return 0.0;
  if (f == 1) return 1.0;
  if (stamp_[f] == stamp_epoch_) return frac_memo_[f];
  double result = 0.5 * (sat_fraction_rec(nodes_[f].lo) +
                         sat_fraction_rec(nodes_[f].hi));
  stamp_[f] = stamp_epoch_;
  frac_memo_[f] = result;
  return result;
}

double BddManager::sat_fraction(Ref f) {
  begin_scratch_pass();
  return sat_fraction_rec(f);
}

double BddManager::sat_count(Ref f) {
  return sat_fraction(f) * std::ldexp(1.0, num_vars_);
}

BddManager::Ref BddManager::cofactor(Ref f, int v, bool value) {
  if (f <= 1) return f;
  int32_t top = var_of(f);
  if (top > v) return f;  // f does not depend on v (v above top in order)
  if (top == v) return value ? nodes_[f].hi : nodes_[f].lo;
  Ref lo = cofactor(nodes_[f].lo, v, value);
  Ref hi = cofactor(nodes_[f].hi, v, value);
  return make_node(top, lo, hi);
}

BddManager::Ref BddManager::exists(Ref f, int var) {
  return bdd_or(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::forall(Ref f, int var) {
  return bdd_and(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::exists_many(Ref f, const std::vector<bool>& vars) {
  // Quantify bottom-up (highest index first) so intermediate results stay
  // small near the terminals.
  for (int v = static_cast<int>(vars.size()) - 1; v >= 0; --v) {
    if (vars[v]) f = exists(f, v);
  }
  return f;
}

BddManager::Ref BddManager::boolean_difference(Ref f, int var) {
  return bdd_xor(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::compose(Ref f, int var, Ref g) {
  // f[var <- g] = ITE(g, f|var=1, f|var=0).
  return bdd_ite(g, cofactor(f, var, true), cofactor(f, var, false));
}

bool BddManager::evaluate(Ref f, uint64_t input) const {
  while (f > 1) {
    const BddNode& n = nodes_[f];
    f = ((input >> n.var) & 1) ? n.hi : n.lo;
  }
  return f == 1;
}

std::vector<bool> BddManager::support(Ref f) const {
  begin_scratch_pass();
  std::vector<bool> vars(num_vars_, false);
  std::vector<Ref> stack = {f};
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || stamp_[r] == stamp_epoch_) continue;
    stamp_[r] = stamp_epoch_;
    vars[nodes_[r].var] = true;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return vars;
}

size_t BddManager::size(Ref f) const {
  begin_scratch_pass();
  std::vector<Ref> stack = {f};
  size_t count = 0;
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || stamp_[r] == stamp_epoch_) continue;
    stamp_[r] = stamp_epoch_;
    ++count;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return count;
}

std::vector<BddManager::Ref> BddManager::garbage_collect(
    const std::vector<Ref>& roots) {
  // Mark. Roots equal to kInvalidRef are permitted (callers keep sentinel
  // slots for nodes outside their cones) and simply ignored.
  std::vector<char> live(nodes_.size(), 0);
  live[0] = live[1] = 1;
  std::vector<Ref> stack;
  for (Ref r : roots) {
    if (r == kInvalidRef || r >= nodes_.size() || live[r]) continue;
    live[r] = 1;
    stack.push_back(r);
  }
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    for (Ref child : {nodes_[r].lo, nodes_[r].hi}) {
      if (!live[child]) {
        live[child] = 1;
        stack.push_back(child);
      }
    }
  }

  // Sweep: compact in index order, which preserves the children-before-
  // parents invariant of the arena.
  std::vector<Ref> remap(nodes_.size(), kInvalidRef);
  std::vector<BddNode> kept;
  for (Ref r = 0; r < static_cast<Ref>(nodes_.size()); ++r) {
    if (!live[r]) continue;
    remap[r] = static_cast<Ref>(kept.size());
    BddNode n = nodes_[r];
    if (r > 1) {
      n.lo = remap[n.lo];
      n.hi = remap[n.hi];
    }
    kept.push_back(n);
  }
  nodes_ = std::move(kept);

  // Rebuild the unique table at a capacity fitting the survivors.
  unique_count_ = nodes_.size() - 2;
  unique_slots_.assign(pow2_at_least((unique_count_ + 1) * 10 / 7, 1024),
                       kInvalidRef);
  for (Ref id = 2; id < static_cast<Ref>(nodes_.size()); ++id) {
    unique_insert(id);
  }

  // Refs changed meaning: drop every cached/memoized entry.
  std::fill(ite_cache_.begin(), ite_cache_.end(), IteEntry{});
  stamp_.assign(nodes_.size(), 0);
  stamp_epoch_ = 0;
  return remap;
}

}  // namespace apx
