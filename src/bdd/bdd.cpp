#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace apx {

BddManager::BddManager(int num_vars, size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(max_nodes) {
  // Terminal nodes: index 0 = false, 1 = true. Terminals use the sentinel
  // variable num_vars (below every real variable in the order).
  nodes_.push_back({num_vars_, 0, 0});
  nodes_.push_back({num_vars_, 1, 1});
}

BddManager::Ref BddManager::make_node(int32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  auto key = std::make_tuple(var, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= max_nodes_) throw BddOverflow();
  Ref id = static_cast<Ref>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, id);
  return id;
}

BddManager::Ref BddManager::var(int v) {
  assert(v >= 0 && v < num_vars_);
  return make_node(v, 0, 1);
}

BddManager::Ref BddManager::literal(int v, bool positive) {
  return positive ? var(v) : make_node(v, 1, 0);
}

BddManager::Ref BddManager::bdd_not(Ref f) { return ite_rec(f, 0, 1); }
BddManager::Ref BddManager::bdd_and(Ref f, Ref g) { return ite_rec(f, g, 0); }
BddManager::Ref BddManager::bdd_or(Ref f, Ref g) { return ite_rec(f, 1, g); }
BddManager::Ref BddManager::bdd_xor(Ref f, Ref g) {
  return ite_rec(f, bdd_not(g), g);
}
BddManager::Ref BddManager::bdd_ite(Ref f, Ref g, Ref h) {
  return ite_rec(f, g, h);
}

BddManager::Ref BddManager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  auto key = std::make_tuple(f, g, h);
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  int32_t top = std::min({var_of(f), var_of(g), var_of(h)});
  auto cof = [&](Ref x, bool hi) -> Ref {
    if (var_of(x) != top) return x;
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  Ref lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  Ref result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

bool BddManager::implies(Ref f, Ref g) { return bdd_and(f, bdd_not(g)) == 0; }

double BddManager::sat_fraction_rec(Ref f,
                                    std::unordered_map<Ref, double>& memo) {
  if (f == 0) return 0.0;
  if (f == 1) return 1.0;
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  double result = 0.5 * (sat_fraction_rec(nodes_[f].lo, memo) +
                         sat_fraction_rec(nodes_[f].hi, memo));
  memo.emplace(f, result);
  return result;
}

double BddManager::sat_fraction(Ref f) {
  std::unordered_map<Ref, double> memo;
  return sat_fraction_rec(f, memo);
}

double BddManager::sat_count(Ref f) {
  return sat_fraction(f) * std::ldexp(1.0, num_vars_);
}

BddManager::Ref BddManager::cofactor(Ref f, int v, bool value) {
  if (f <= 1) return f;
  int32_t top = var_of(f);
  if (top > v) return f;  // f does not depend on v (v above top in order)
  if (top == v) return value ? nodes_[f].hi : nodes_[f].lo;
  Ref lo = cofactor(nodes_[f].lo, v, value);
  Ref hi = cofactor(nodes_[f].hi, v, value);
  return make_node(top, lo, hi);
}

BddManager::Ref BddManager::exists(Ref f, int var) {
  return bdd_or(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::forall(Ref f, int var) {
  return bdd_and(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::exists_many(Ref f, const std::vector<bool>& vars) {
  // Quantify bottom-up (highest index first) so intermediate results stay
  // small near the terminals.
  for (int v = static_cast<int>(vars.size()) - 1; v >= 0; --v) {
    if (vars[v]) f = exists(f, v);
  }
  return f;
}

BddManager::Ref BddManager::boolean_difference(Ref f, int var) {
  return bdd_xor(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::compose(Ref f, int var, Ref g) {
  // f[var <- g] = ITE(g, f|var=1, f|var=0).
  return bdd_ite(g, cofactor(f, var, true), cofactor(f, var, false));
}

bool BddManager::evaluate(Ref f, uint64_t input) const {
  while (f > 1) {
    const BddNode& n = nodes_[f];
    f = ((input >> n.var) & 1) ? n.hi : n.lo;
  }
  return f == 1;
}

std::vector<bool> BddManager::support(Ref f) const {
  std::vector<bool> seen_node;
  std::vector<bool> vars(num_vars_, false);
  std::vector<Ref> stack = {f};
  seen_node.resize(nodes_.size(), false);
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || seen_node[r]) continue;
    seen_node[r] = true;
    vars[nodes_[r].var] = true;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return vars;
}

size_t BddManager::size(Ref f) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<Ref> stack = {f};
  size_t count = 0;
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || seen[r]) continue;
    seen[r] = true;
    ++count;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return count;
}

}  // namespace apx
