#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <numeric>

#include "core/trace.hpp"

namespace apx {

namespace {

// Smallest power of two >= n (and >= floor_cap).
size_t pow2_at_least(size_t n, size_t floor_cap) {
  size_t cap = floor_cap;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

BddManager::BddManager(int num_vars, size_t max_nodes,
                       std::vector<int> level_to_var)
    : num_vars_(num_vars), max_nodes_(max_nodes), reorder_threshold_(8192) {
  // Terminal nodes: index 0 = false, 1 = true. Terminals use the sentinel
  // variable num_vars (below every real variable in the order).
  var_.push_back(num_vars_);
  kids_.push_back({0, 0});
  var_.push_back(num_vars_);
  kids_.push_back({1, 1});
  var2level_.resize(num_vars_ + 1);
  level2var_.resize(num_vars_ + 1);
  install_order(level_to_var);
  unique_slots_.assign(1024, kInvalidRef);
  // Direct-mapped lossy cache: sized to the budget (bounded at 2^20
  // entries = 16 MB) so big managers don't thrash on a tiny cache.
  size_t ite_cap = std::clamp(pow2_at_least(max_nodes / 4, size_t{1} << 12),
                              size_t{1} << 12, size_t{1} << 20);
  ite_cache_.assign(ite_cap, IteEntry{});
  stats_.peak_nodes = 2;
}

void BddManager::install_order(const std::vector<int>& level_to_var) {
  if (level_to_var.empty()) {
    std::iota(var2level_.begin(), var2level_.end(), 0);
    std::iota(level2var_.begin(), level2var_.end(), 0);
    return;
  }
  if (static_cast<int>(level_to_var.size()) != num_vars_) {
    throw std::logic_error("level_to_var must cover every variable");
  }
  std::vector<char> placed(num_vars_, 0);
  for (int l = 0; l < num_vars_; ++l) {
    int v = level_to_var[l];
    if (v < 0 || v >= num_vars_ || placed[v]) {
      throw std::logic_error(
          "level_to_var must be a permutation of 0..num_vars-1");
    }
    placed[v] = 1;
    level2var_[l] = v;
    var2level_[v] = l;
  }
  // The terminal sentinel sits below every real level.
  level2var_[num_vars_] = num_vars_;
  var2level_[num_vars_] = num_vars_;
}

void BddManager::seed_order(const std::vector<int>& level_to_var) {
  // Levels are baked into every existing internal node; reinterpreting
  // them post hoc would silently change those nodes' functions.
  if (var_.size() != 2 || !free_list_.empty()) {
    throw std::logic_error("seed_order requires an empty manager");
  }
  install_order(level_to_var);
}

void BddManager::unique_insert(Ref id) {
  const size_t mask = unique_slots_.size() - 1;
  size_t idx = hash_triple(var_[id], kids_[id].lo, kids_[id].hi) & mask;
  while (unique_slots_[idx] != kInvalidRef) idx = (idx + 1) & mask;
  unique_slots_[idx] = id;
}

void BddManager::unique_erase(Ref id) {
  const size_t mask = unique_slots_.size() - 1;
  size_t idx = hash_triple(var_[id], kids_[id].lo, kids_[id].hi) & mask;
  while (unique_slots_[idx] != id) {
    assert(unique_slots_[idx] != kInvalidRef && "erasing a node not in table");
    idx = (idx + 1) & mask;
  }
  // Backward-shift deletion: slide later cluster members up into the hole
  // whenever their home slot is at or before it, so linear probing never
  // needs tombstones.
  size_t hole = idx;
  size_t probe = idx;
  while (true) {
    probe = (probe + 1) & mask;
    Ref s = unique_slots_[probe];
    if (s == kInvalidRef) break;
    size_t home = hash_triple(var_[s], kids_[s].lo, kids_[s].hi) & mask;
    if (((probe - home) & mask) >= ((probe - hole) & mask)) {
      unique_slots_[hole] = s;
      hole = probe;
    }
  }
  unique_slots_[hole] = kInvalidRef;
  --unique_count_;
}

void BddManager::unique_grow() {
  std::vector<Ref> old = std::move(unique_slots_);
  unique_slots_.assign(old.size() * 2, kInvalidRef);
  // Every live non-terminal node is (exactly once) in the table;
  // re-inserting from the arena avoids touching the old slot array.
  for (Ref id = 2; id < static_cast<Ref>(var_.size()); ++id) {
    if (var_[id] != kFreeVar) unique_insert(id);
  }
}

BddManager::Ref BddManager::alloc_node(int32_t var, Ref lo, Ref hi) {
  Ref id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    var_[id] = var;
    kids_[id] = {lo, hi};
  } else {
    id = static_cast<Ref>(var_.size());
    var_.push_back(var);
    kids_.push_back({lo, hi});
  }
  if (live_nodes() > stats_.peak_nodes) stats_.peak_nodes = live_nodes();
  return id;
}

BddManager::Ref BddManager::make_node(int32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const size_t mask = unique_slots_.size() - 1;
  size_t idx = hash_triple(var, lo, hi) & mask;
  ++stats_.unique_lookups;
  while (true) {
    ++stats_.unique_probes;
    Ref slot = unique_slots_[idx];
    if (slot == kInvalidRef) break;
    if (var_[slot] == var && kids_[slot].lo == lo && kids_[slot].hi == hi) {
      return slot;
    }
    idx = (idx + 1) & mask;
  }
  if (live_nodes() >= max_nodes_) throw BddOverflow();
  Ref id = alloc_node(var, lo, hi);
  unique_slots_[idx] = id;
  ++unique_count_;
  if ((unique_count_ + 1) * 10 >= unique_slots_.size() * 7) unique_grow();
  // Reordering here would move levels under the feet of in-flight
  // recursions (ite_rec holds refs and a top level on its stack), so only
  // latch the request; cooperative callers reorder() at a safe point.
  if (auto_reorder_ && !in_reorder_ && !reorder_pending_ &&
      live_nodes() >= reorder_threshold_) {
    reorder_pending_ = true;
  }
  return id;
}

BddManager::Ref BddManager::var(int v) {
  assert(v >= 0 && v < num_vars_);
  return make_node(v, 0, 1);
}

BddManager::Ref BddManager::literal(int v, bool positive) {
  return positive ? var(v) : make_node(v, 1, 0);
}

BddManager::Ref BddManager::bdd_not(Ref f) { return ite_rec(f, 0, 1); }
BddManager::Ref BddManager::bdd_and(Ref f, Ref g) { return ite_rec(f, g, 0); }
BddManager::Ref BddManager::bdd_or(Ref f, Ref g) { return ite_rec(f, 1, g); }
BddManager::Ref BddManager::bdd_xor(Ref f, Ref g) {
  return ite_rec(f, bdd_not(g), g);
}
BddManager::Ref BddManager::bdd_ite(Ref f, Ref g, Ref h) {
  return ite_rec(f, g, h);
}

BddManager::Ref BddManager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  const size_t mask = ite_cache_.size() - 1;
  const size_t idx =
      mix64(static_cast<uint64_t>(f) * 0x9E3779B97F4A7C15ULL +
            ((static_cast<uint64_t>(g) << 32) | h)) &
      mask;
  IteEntry& entry = ite_cache_[idx];
  if (entry.f == f && entry.g == g && entry.h == h) {
    ++stats_.ite_hits;
    return entry.result;
  }
  ++stats_.ite_misses;

  // Decompose on the topmost *level* (not variable index): the recursion
  // is what makes the permutation layer transparent to callers.
  int32_t top_level = std::min({level_of(f), level_of(g), level_of(h)});
  int32_t top_var = level2var_[top_level];
  auto cof = [&](Ref x, bool hi) -> Ref {
    if (var_[x] != top_var) return x;
    return hi ? kids_[x].hi : kids_[x].lo;
  };
  Ref lo = ite_rec(cof(f, false), cof(g, false), cof(h, false));
  Ref hi = ite_rec(cof(f, true), cof(g, true), cof(h, true));
  Ref result = make_node(top_var, lo, hi);
  // Lossy cache: overwrite whatever the recursive calls left in this slot.
  IteEntry& out = ite_cache_[idx];
  out.f = f;
  out.g = g;
  out.h = h;
  out.result = result;
  return out.result;
}

bool BddManager::implies(Ref f, Ref g) { return bdd_and(f, bdd_not(g)) == 0; }

void BddManager::begin_scratch_pass() const {
  if (stamp_.size() < var_.size()) stamp_.resize(var_.size(), 0);
  if (frac_memo_.size() < var_.size()) frac_memo_.resize(var_.size());
  if (ref_memo_.size() < var_.size()) ref_memo_.resize(var_.size());
  if (++stamp_epoch_ == 0) {  // epoch wrapped: invalidate everything
    std::fill(stamp_.begin(), stamp_.end(), 0);
    stamp_epoch_ = 1;
  }
}

double BddManager::sat_fraction_rec(Ref f) {
  if (f == 0) return 0.0;
  if (f == 1) return 1.0;
  if (stamp_[f] == stamp_epoch_) return frac_memo_[f];
  double result =
      0.5 * (sat_fraction_rec(kids_[f].lo) + sat_fraction_rec(kids_[f].hi));
  stamp_[f] = stamp_epoch_;
  frac_memo_[f] = result;
  return result;
}

double BddManager::sat_fraction(Ref f) {
  begin_scratch_pass();
  return sat_fraction_rec(f);
}

double BddManager::sat_count(Ref f) {
  return sat_fraction(f) * std::ldexp(1.0, num_vars_);
}

BddManager::Ref BddManager::cofactor_rec(Ref f, int32_t vlevel, bool value) {
  if (f <= 1) return f;
  const int32_t lev = level_of(f);
  if (lev > vlevel) return f;  // f does not depend on v (v above f's top)
  if (lev == vlevel) return value ? kids_[f].hi : kids_[f].lo;
  if (stamp_[f] == stamp_epoch_) return ref_memo_[f];
  Ref lo = cofactor_rec(kids_[f].lo, vlevel, value);
  Ref hi = cofactor_rec(kids_[f].hi, vlevel, value);
  // Only nodes of f's input DAG are stamped, all of which predate the
  // pass, so make_node growing the arena past stamp_.size() is safe.
  Ref result = make_node(var_[f], lo, hi);
  stamp_[f] = stamp_epoch_;
  ref_memo_[f] = result;
  return result;
}

BddManager::Ref BddManager::cofactor(Ref f, int v, bool value) {
  assert(v >= 0 && v < num_vars_);
  begin_scratch_pass();
  return cofactor_rec(f, var2level_[v], value);
}

BddManager::Ref BddManager::exists(Ref f, int var) {
  return bdd_or(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::forall(Ref f, int var) {
  return bdd_and(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::exists_many(Ref f, const std::vector<bool>& vars) {
  // Quantify bottom-up (deepest level first) so intermediate results stay
  // small near the terminals. Depth means level, not variable index.
  std::vector<int> order;
  for (int v = 0; v < static_cast<int>(vars.size()); ++v) {
    if (vars[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return var2level_[a] > var2level_[b]; });
  for (int v : order) f = exists(f, v);
  return f;
}

BddManager::Ref BddManager::boolean_difference(Ref f, int var) {
  return bdd_xor(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::compose(Ref f, int var, Ref g) {
  // f[var <- g] = ITE(g, f|var=1, f|var=0).
  return bdd_ite(g, cofactor(f, var, true), cofactor(f, var, false));
}

bool BddManager::evaluate(Ref f, uint64_t input) const {
  while (f > 1) {
    f = ((input >> var_[f]) & 1) ? kids_[f].hi : kids_[f].lo;
  }
  return f == 1;
}

std::vector<bool> BddManager::support(Ref f) const {
  begin_scratch_pass();
  std::vector<bool> vars(num_vars_, false);
  std::vector<Ref> stack = {f};
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || stamp_[r] == stamp_epoch_) continue;
    stamp_[r] = stamp_epoch_;
    vars[var_[r]] = true;
    stack.push_back(kids_[r].lo);
    stack.push_back(kids_[r].hi);
  }
  return vars;
}

size_t BddManager::size(Ref f) const {
  begin_scratch_pass();
  std::vector<Ref> stack = {f};
  size_t count = 0;
  while (!stack.empty()) {
    Ref r = stack.back();
    stack.pop_back();
    if (r <= 1 || stamp_[r] == stamp_epoch_) continue;
    stamp_[r] = stamp_epoch_;
    ++count;
    stack.push_back(kids_[r].lo);
    stack.push_back(kids_[r].hi);
  }
  return count;
}

std::vector<BddManager::Ref> BddManager::garbage_collect(
    const std::vector<Ref>& roots) {
  ++stats_.gc_runs;
  if (trace::enabled()) {
    trace::counter("bdd.gc_runs").add(1);
    trace::counter("bdd.peak_nodes", trace::CounterKind::kGauge)
        .set_max(static_cast<int64_t>(stats_.peak_nodes));
  }
  std::vector<Ref> remap(var_.size(), kInvalidRef);
  std::vector<int32_t> kept_var;
  std::vector<BddChildren> kept_kids;
  kept_var.reserve(live_nodes());
  kept_kids.reserve(live_nodes());
  kept_var.push_back(var_[0]);
  kept_kids.push_back(kids_[0]);
  kept_var.push_back(var_[1]);
  kept_kids.push_back(kids_[1]);
  remap[0] = 0;
  remap[1] = 1;
  // Post-order DFS compaction: a node is emitted only after both children,
  // so children's remap entries are final when the parent is rewritten.
  // (Index order is not enough once free-list reuse by sifting breaks the
  // arena's children-before-parents monotonicity.) Roots equal to
  // kInvalidRef are permitted (callers keep sentinel slots for nodes
  // outside their cones) and simply ignored.
  std::vector<Ref> stack;
  for (Ref r : roots) {
    if (r == kInvalidRef || r >= remap.size() || remap[r] != kInvalidRef) {
      continue;
    }
    assert(var_[r] != kFreeVar && "GC root references a freed node");
    stack.push_back(r);
  }
  while (!stack.empty()) {
    Ref r = stack.back();
    if (remap[r] != kInvalidRef) {  // finished via another parent
      stack.pop_back();
      continue;
    }
    const Ref lo = kids_[r].lo;
    const Ref hi = kids_[r].hi;
    bool ready = true;
    if (remap[lo] == kInvalidRef) {
      stack.push_back(lo);
      ready = false;
    }
    if (remap[hi] == kInvalidRef) {
      stack.push_back(hi);
      ready = false;
    }
    if (!ready) continue;
    stack.pop_back();
    remap[r] = static_cast<Ref>(kept_var.size());
    kept_var.push_back(var_[r]);
    kept_kids.push_back({remap[lo], remap[hi]});
  }
  var_ = std::move(kept_var);
  kids_ = std::move(kept_kids);
  free_list_.clear();

  // Rebuild the unique table at a capacity fitting the survivors.
  unique_count_ = var_.size() - 2;
  unique_slots_.assign(pow2_at_least((unique_count_ + 1) * 10 / 7, 1024),
                       kInvalidRef);
  for (Ref id = 2; id < static_cast<Ref>(var_.size()); ++id) {
    unique_insert(id);
  }

  // Refs changed meaning: drop every cached/memoized entry.
  std::fill(ite_cache_.begin(), ite_cache_.end(), IteEntry{});
  stamp_.assign(var_.size(), 0);
  stamp_epoch_ = 0;
  return remap;
}

// ---- dynamic reordering ----

void BddManager::register_external_refs(std::vector<Ref>* slots) {
  unregister_external_refs(slots);  // idempotent
  external_slots_.push_back(slots);
}

void BddManager::unregister_external_refs(std::vector<Ref>* slots) {
  external_slots_.erase(
      std::remove(external_slots_.begin(), external_slots_.end(), slots),
      external_slots_.end());
}

void BddManager::deref(Ref r) {
  // Drop one reference; cascade-free nodes whose count hits zero. Freed
  // slots leave the unique table, get var = kFreeVar (so stale var_nodes_
  // entries are skipped), and join the free list for reuse.
  std::vector<Ref> stack = {r};
  while (!stack.empty()) {
    Ref x = stack.back();
    stack.pop_back();
    if (x <= 1) continue;
    assert(parent_count_[x] > 0 && "deref of an unreferenced node");
    if (--parent_count_[x] != 0) continue;
    unique_erase(x);  // before the key (var, lo, hi) is clobbered
    stack.push_back(kids_[x].lo);
    stack.push_back(kids_[x].hi);
    var_[x] = kFreeVar;
    free_list_.push_back(x);
  }
}

BddManager::Ref BddManager::swap_find_or_make(int32_t var, Ref lo, Ref hi) {
  // make_node twin for use inside swaps: maintains parent_count_ (result's
  // count is pre-incremented for the caller's reference; a fresh node also
  // counts its two children) and var_nodes_. No reorder latch, no node cap
  // — the sift_var max-growth abort bounds temporary growth instead.
  Ref id;
  if (lo == hi) {
    id = lo;
  } else {
    const size_t mask = unique_slots_.size() - 1;
    size_t idx = hash_triple(var, lo, hi) & mask;
    ++stats_.unique_lookups;
    Ref found = kInvalidRef;
    while (true) {
      ++stats_.unique_probes;
      Ref slot = unique_slots_[idx];
      if (slot == kInvalidRef) break;
      if (var_[slot] == var && kids_[slot].lo == lo &&
          kids_[slot].hi == hi) {
        found = slot;
        break;
      }
      idx = (idx + 1) & mask;
    }
    if (found != kInvalidRef) {
      id = found;
    } else {
      id = alloc_node(var, lo, hi);
      if (parent_count_.size() <= id) parent_count_.resize(id + 1, 0);
      parent_count_[id] = 0;
      ++parent_count_[lo];
      ++parent_count_[hi];
      unique_slots_[idx] = id;
      ++unique_count_;
      if ((unique_count_ + 1) * 10 >= unique_slots_.size() * 7) unique_grow();
      var_nodes_[var].push_back(id);
    }
  }
  ++parent_count_[id];
  return id;
}

void BddManager::build_interaction_matrix(const std::vector<Ref>& roots) {
  // u and v interact iff some root's support contains both. Every arena
  // node is root-reachable here (reorder() GCs first), so a node labelled
  // x with a child labelled y implies x and y interact; contrapositive:
  // non-interacting level pairs swap with zero node rewrites.
  interact_words_ = (static_cast<size_t>(num_vars_) + 63) / 64;
  interact_.assign(static_cast<size_t>(num_vars_) * interact_words_, 0);
  std::vector<Ref> uniq(roots);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  std::vector<uint32_t> mark(var_.size(), 0);
  std::vector<uint64_t> sup(interact_words_);
  std::vector<Ref> stack;
  uint32_t tag = 0;
  for (Ref root : uniq) {
    if (root <= 1) continue;
    ++tag;
    std::fill(sup.begin(), sup.end(), 0);
    stack.push_back(root);
    while (!stack.empty()) {
      const Ref n = stack.back();
      stack.pop_back();
      if (n <= 1 || mark[n] == tag) continue;
      mark[n] = tag;
      const int32_t v = var_[n];
      sup[static_cast<size_t>(v) / 64] |= 1ull << (static_cast<size_t>(v) % 64);
      stack.push_back(kids_[n].lo);
      stack.push_back(kids_[n].hi);
    }
    for (int32_t v = 0; v < num_vars_; ++v) {
      if ((sup[static_cast<size_t>(v) / 64] >>
           (static_cast<size_t>(v) % 64)) &
          1u) {
        uint64_t* row = &interact_[static_cast<size_t>(v) * interact_words_];
        for (size_t w = 0; w < interact_words_; ++w) row[w] |= sup[w];
      }
    }
  }
}

void BddManager::swap_levels(int level) {
  // Exchange the variables at `level` and `level + 1`. Only nodes labelled
  // with the upper variable x that reference the lower variable y change;
  // they are rewritten *in place* (same Ref, same function, new label y),
  // which is what keeps every live Ref stable across sifting. Nodes not
  // at these two levels are untouched by construction.
  const int32_t x = level2var_[level];
  const int32_t y = level2var_[level + 1];
  if (!interact_.empty() && !interacts(x, y)) {
    // Disjoint supports: no x-node has a y-child, so the swap is pure
    // permutation bookkeeping — the dominant case on wide, shallow
    // circuits where most PI pairs never meet in one cone.
    std::swap(level2var_[level], level2var_[level + 1]);
    var2level_[x] = level + 1;
    var2level_[y] = level;
    return;
  }
  std::vector<Ref> old_list = std::move(var_nodes_[x]);
  var_nodes_[x].clear();
  for (Ref n : old_list) {
    if (var_[n] != x) continue;  // stale entry: freed/reused/moved
    const Ref f0 = kids_[n].lo;
    const Ref f1 = kids_[n].hi;
    const bool lo_y = var_[f0] == y;
    const bool hi_y = var_[f1] == y;
    if (!lo_y && !hi_y) {
      // Independent of y: keeps label x, silently moves down one level.
      var_nodes_[x].push_back(n);
      continue;
    }
    const Ref f00 = lo_y ? kids_[f0].lo : f0;
    const Ref f01 = lo_y ? kids_[f0].hi : f0;
    const Ref f10 = hi_y ? kids_[f1].lo : f1;
    const Ref f11 = hi_y ? kids_[f1].hi : f1;
    // Build the new children before erasing n: n is still in the unique
    // table under its old key, so a rehash here re-inserts it correctly.
    const Ref g0 = swap_find_or_make(x, f00, f10);
    const Ref g1 = swap_find_or_make(x, f01, f11);
    assert(g0 != g1 && "swap produced a redundant node");
    unique_erase(n);
    var_[n] = y;
    kids_[n] = {g0, g1};
    unique_insert(n);
    ++unique_count_;  // unique_insert is count-neutral; rebalance the erase
    var_nodes_[y].push_back(n);
    // New references were counted above; dropping the old ones last means
    // shared children never see a transient zero count.
    deref(f0);
    deref(f1);
  }
  std::swap(level2var_[level], level2var_[level + 1]);
  var2level_[x] = level + 1;
  var2level_[y] = level;
}

void BddManager::sift_var(int x) {
  const int bottom = num_vars_ - 1;
  const int start = var2level_[x];
  const size_t start_size = live_internal();
  const size_t limit = start_size + start_size / 5 + 2;  // 1.2x growth abort
  size_t best_size = start_size;
  int best = start;
  int cur = start;
  auto move_to = [&](int target) {
    while (cur < target) swap_levels(cur++);
    while (cur > target) swap_levels(--cur);
  };
  auto sweep = [&](int end, int step) {
    while (cur != end) {
      if (step > 0) {
        swap_levels(cur);
        ++cur;
      } else {
        --cur;
        swap_levels(cur);
      }
      const size_t s = live_internal();
      if (s < best_size) {
        best_size = s;
        best = cur;
      }
      if (s > limit) break;
    }
  };
  // Sweep toward the nearer end first (fewer swaps to undo on abort),
  // return to the start, sweep the other way, then park at the best level
  // seen. Post-GC the live size is a pure function of the order, so
  // live_internal() measured at each stop is exact.
  if (bottom - start <= start) {
    sweep(bottom, +1);
    move_to(start);
    sweep(0, -1);
  } else {
    sweep(0, -1);
    move_to(start);
    sweep(bottom, +1);
  }
  move_to(best);
}

void BddManager::sift(const std::vector<Ref>& roots) {
  // Scoped reference counts: the arena was just garbage-collected, so
  // every node is reachable and in-arena parent edges plus one pin per
  // root occurrence give exact liveness for the duration of the pass.
  parent_count_.assign(var_.size(), 0);
  for (Ref r = 2; r < static_cast<Ref>(var_.size()); ++r) {
    ++parent_count_[kids_[r].lo];
    ++parent_count_[kids_[r].hi];
  }
  for (Ref r : roots) {
    if (r != kInvalidRef) ++parent_count_[r];
  }
  var_nodes_.assign(num_vars_, {});
  for (Ref r = 2; r < static_cast<Ref>(var_.size()); ++r) {
    var_nodes_[var_[r]].push_back(r);
  }
  build_interaction_matrix(roots);

  constexpr size_t kMaxSiftVars = 128;  // CUDD-style per-pass variable cap
  // Two passes capture nearly all of the reduction on these table sizes;
  // later passes cost as much as the first while reclaiming a few percent,
  // and converged orders are cached across builds anyway.
  constexpr int kMaxPasses = 2;
  size_t prev = live_internal();
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    // Most-populated variables first: biggest expected gain, and empty
    // variables are skipped outright (their swaps are no-ops anyway).
    std::vector<std::pair<size_t, int>> occupancy;
    occupancy.reserve(num_vars_);
    for (int v = 0; v < num_vars_; ++v) {
      size_t count = 0;
      for (Ref r : var_nodes_[v]) count += var_[r] == v;
      // Lower-bound prune: the sweep for a variable with c nodes cannot
      // shrink the table by more than c - 1 (its own level collapsing is
      // the best case), so single-node variables — the common tail after
      // convergence — are skipped outright instead of paying 2n swaps
      // for a provably zero gain.
      if (count > 1) occupancy.emplace_back(count, v);
    }
    std::sort(occupancy.begin(), occupancy.end(),
              [](const std::pair<size_t, int>& a,
                 const std::pair<size_t, int>& b) { return a.first > b.first; });
    if (occupancy.size() > kMaxSiftVars) occupancy.resize(kMaxSiftVars);
    for (const auto& [count, v] : occupancy) sift_var(v);
    const size_t now = live_internal();
    // Converged when the pass gained less than 2% — with a floor of one
    // node so small tables (prev < 50, where prev/50 == 0) still demand a
    // real improvement to keep sifting rather than degenerating into a
    // zero-tolerance comparison.
    if (now + std::max<size_t>(1, prev / 50) >= prev) break;
    prev = now;
  }
  parent_count_.clear();
  var_nodes_.clear();
  interact_.clear();
}

std::vector<BddManager::Ref> BddManager::reorder(
    const std::vector<Ref>& extra_roots) {
  reorder_pending_ = false;
  // Reorder budget: a manager seeded with a previously converged order is
  // not expected to beat that order until it outgrows it, so absorb the
  // request — no GC, no sifting, refs stay valid (identity remap). The
  // growth threshold backs off exactly like the sifting path so the
  // make_node latch does not re-fire on the very next allocation.
  if (reorder_budget_ != 0 && live_nodes() <= reorder_budget_) {
    ++stats_.reorder_skipped;
    if (trace::enabled()) {
      trace::counter("bdd.reorder_skipped_budget").add(1);
    }
    reorder_threshold_ = std::max(reorder_threshold_, 2 * live_nodes());
    std::vector<Ref> identity(var_.size());
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }
  std::vector<Ref> roots;
  for (const std::vector<Ref>* slots : external_slots_) {
    for (Ref r : *slots) {
      if (r != kInvalidRef) roots.push_back(r);
    }
  }
  for (Ref r : extra_roots) {
    if (r != kInvalidRef) roots.push_back(r);
  }
  if (roots.empty()) {
    // No known roots: collecting would drop every node. Identity no-op.
    std::vector<Ref> identity(var_.size());
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Ref> remap = garbage_collect(roots);
  for (std::vector<Ref>* slots : external_slots_) {
    for (Ref& r : *slots) {
      if (r != kInvalidRef) r = remap[r];
    }
  }
  for (Ref& r : roots) r = remap[r];  // all live: they were the GC roots
  in_reorder_ = true;
  {
    trace::Span span("bdd.reorder");
    sift(roots);
  }
  in_reorder_ = false;
  ++stats_.reorder_runs;
  if (trace::enabled()) {
    trace::counter("bdd.reorder_runs").add(1);
    trace::counter("bdd.peak_nodes", trace::CounterKind::kGauge)
        .set_max(static_cast<int64_t>(stats_.peak_nodes));
  }
  // Back off: don't re-trigger until the arena quadruples from here. A
  // monotonically growing build re-sifts O(log4 n) times instead of
  // O(log2 n); sift cost rises with table size, so halving the re-sift
  // count roughly halves total sift time while the max-growth abort in
  // sift_var still bounds the peak between runs.
  reorder_threshold_ = std::max(reorder_threshold_, 4 * live_nodes());
  stats_.reorder_time_ms += std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  return remap;
}

}  // namespace apx
