// Bridge from Network to global BDDs: computes the global Boolean function
// of every node (over the primary inputs) by sweeping the network in
// topological order, evaluating each node's local SOP on its fanins' BDDs.
#pragma once

#include <optional>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"

namespace apx {

/// Global BDDs of a network's nodes. PI variable i is the i-th PI of the
/// network the object was built from; internally the manager is seeded
/// from the process-wide OrderCache when a converged order for this
/// network content exists (with the matching reorder budget, so the
/// seeded build skips re-sifting) and with the structural static order
/// otherwise, then refines by sifting when the arena crosses the growth
/// threshold — all invisible to callers, who keep addressing variables by
/// PI index. A successful build stores its converged order back into the
/// cache.
class NetworkBdds {
 public:
  /// Builds BDDs for every node in the cone of the POs (and any roots
  /// given). Throws BddOverflow if the budget is exceeded.
  explicit NetworkBdds(const Network& net, size_t max_nodes = 8u << 20);
  ~NetworkBdds();

  // refs_ is registered with mgr_ as a reorder root set; moving either
  // would dangle that registration.
  NetworkBdds(const NetworkBdds&) = delete;
  NetworkBdds& operator=(const NetworkBdds&) = delete;

  BddManager& manager() { return mgr_; }

  /// Global function of node `id`.
  BddManager::Ref node_ref(NodeId id) const { return refs_.at(id); }

  /// Global function of PO `po_index`.
  BddManager::Ref po_ref(int po_index) const;

  /// Computes the global BDD of an arbitrary node function specified as an
  /// SOP over fanins that already have BDDs (used for what-if evaluation of
  /// rewritten node functions without mutating the network).
  BddManager::Ref eval_sop(const Sop& sop,
                           const std::vector<BddManager::Ref>& fanin_refs);

 private:
  const Network& net_;
  // Declared before mgr_: cached_or_static_order fills both while
  // computing mgr_'s seed order in the member-initializer list.
  uint64_t order_key_ = 0;
  size_t seed_budget_ = 0;
  BddManager mgr_;
  std::vector<BddManager::Ref> refs_;
};

/// Global BDD of one node function: evaluates `sop` (variable i = fanin i)
/// over fanin BDDs in `mgr`. The kernel behind NetworkBdds, build_cone_bdds
/// and the oracle's dirty-cone refresh. Asserts that no fanin ref is the
/// kNoBddRef sentinel (a fanin outside the built cone is a caller bug, not
/// a silent constant-0).
BddManager::Ref eval_sop_bdd(BddManager& mgr, const Sop& sop,
                             const std::vector<BddManager::Ref>& fanin_refs);

/// Builds the global BDD of one PO cone of `net` inside an existing manager
/// whose variables correspond to `net`'s PIs (under whatever order the
/// manager carries). Returns nullopt on overflow. Polls the manager's
/// reorder latch between nodes; the caller's other refs survive only if
/// they are registered with the manager (see register_external_refs).
std::optional<BddManager::Ref> build_po_bdd(BddManager& mgr,
                                            const Network& net, int po_index);

/// Sentinel for nodes outside the requested cone in build_cone_bdds.
inline constexpr BddManager::Ref kNoBddRef = 0xFFFFFFFFu;

/// Builds global BDDs for every node in the cone of `roots` inside an
/// existing manager (variables = net PIs by position). Throws BddOverflow
/// on budget exhaustion. Nodes outside the cone hold kNoBddRef.
std::vector<BddManager::Ref> build_cone_bdds(BddManager& mgr,
                                             const Network& net,
                                             const std::vector<NodeId>& roots);

}  // namespace apx
