#include "bdd/network_bdd.hpp"

namespace apx {

BddManager::Ref eval_sop_bdd(BddManager& mgr, const Sop& sop,
                             const std::vector<BddManager::Ref>& fanin_refs) {
  BddManager::Ref result = mgr.zero();
  for (const Cube& c : sop.cubes()) {
    BddManager::Ref cube_ref = mgr.one();
    for (int v = 0; v < sop.num_vars(); ++v) {
      LitCode code = c.get(v);
      if (code == LitCode::kFree) continue;
      BddManager::Ref lit = fanin_refs[v];
      if (code == LitCode::kNeg) lit = mgr.bdd_not(lit);
      cube_ref = mgr.bdd_and(cube_ref, lit);
      if (cube_ref == mgr.zero()) break;
    }
    result = mgr.bdd_or(result, cube_ref);
    if (result == mgr.one()) break;
  }
  return result;
}

NetworkBdds::NetworkBdds(const Network& net, size_t max_nodes)
    : net_(net), mgr_(net.num_pis(), max_nodes) {
  refs_.assign(net.num_nodes(), mgr_.zero());
  for (int i = 0; i < net.num_pis(); ++i) {
    refs_[net.pis()[i]] = mgr_.var(i);
  }
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;  // already set
      case NodeKind::kConst0:
        refs_[id] = mgr_.zero();
        break;
      case NodeKind::kConst1:
        refs_[id] = mgr_.one();
        break;
      case NodeKind::kLogic: {
        std::vector<BddManager::Ref> fanin_refs;
        fanin_refs.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanin_refs.push_back(refs_[f]);
        refs_[id] = eval_sop_bdd(mgr_, n.sop, fanin_refs);
        break;
      }
    }
  }
}

BddManager::Ref NetworkBdds::po_ref(int po_index) const {
  return refs_.at(net_.po(po_index).driver);
}

BddManager::Ref NetworkBdds::eval_sop(
    const Sop& sop, const std::vector<BddManager::Ref>& fanin_refs) {
  return eval_sop_bdd(mgr_, sop, fanin_refs);
}

std::vector<BddManager::Ref> build_cone_bdds(BddManager& mgr,
                                             const Network& net,
                                             const std::vector<NodeId>& roots) {
  std::vector<BddManager::Ref> refs(net.num_nodes(), kNoBddRef);
  for (int i = 0; i < net.num_pis(); ++i) refs[net.pis()[i]] = mgr.var(i);
  for (NodeId id : net.cone_of(roots)) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        refs[id] = mgr.zero();
        break;
      case NodeKind::kConst1:
        refs[id] = mgr.one();
        break;
      case NodeKind::kLogic: {
        std::vector<BddManager::Ref> fanin_refs;
        fanin_refs.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanin_refs.push_back(refs[f]);
        refs[id] = eval_sop_bdd(mgr, n.sop, fanin_refs);
        break;
      }
    }
  }
  return refs;
}

std::optional<BddManager::Ref> build_po_bdd(BddManager& mgr,
                                            const Network& net,
                                            int po_index) {
  try {
    std::vector<BddManager::Ref> refs(net.num_nodes(), mgr.zero());
    for (int i = 0; i < net.num_pis(); ++i) refs[net.pis()[i]] = mgr.var(i);
    for (NodeId id : net.cone_of({net.po(po_index).driver})) {
      const Node& n = net.node(id);
      switch (n.kind) {
        case NodeKind::kPi:
          break;
        case NodeKind::kConst0:
          refs[id] = mgr.zero();
          break;
        case NodeKind::kConst1:
          refs[id] = mgr.one();
          break;
        case NodeKind::kLogic: {
          std::vector<BddManager::Ref> fanin_refs;
          for (NodeId f : n.fanins) fanin_refs.push_back(refs[f]);
          refs[id] = eval_sop_bdd(mgr, n.sop, fanin_refs);
          break;
        }
      }
    }
    return refs[net.po(po_index).driver];
  } catch (const BddOverflow&) {
    return std::nullopt;
  }
}

}  // namespace apx
