#include "bdd/network_bdd.hpp"

#include <cassert>

#include "core/trace.hpp"
#include "network/ordering.hpp"
#include "network/topology_view.hpp"

namespace apx {

BddManager::Ref eval_sop_bdd(BddManager& mgr, const Sop& sop,
                             const std::vector<BddManager::Ref>& fanin_refs) {
  BddManager::Ref result = mgr.zero();
  for (const Cube& c : sop.cubes()) {
    BddManager::Ref cube_ref = mgr.one();
    for (int v = 0; v < sop.num_vars(); ++v) {
      LitCode code = c.get(v);
      if (code == LitCode::kFree) continue;
      BddManager::Ref lit = fanin_refs[v];
      assert(lit != kNoBddRef && "SOP fanin has no BDD (outside built cone)");
      if (code == LitCode::kNeg) lit = mgr.bdd_not(lit);
      cube_ref = mgr.bdd_and(cube_ref, lit);
      if (cube_ref == mgr.zero()) break;
    }
    result = mgr.bdd_or(result, cube_ref);
    if (result == mgr.one()) break;
  }
  return result;
}

namespace {

// Shared sweep body for the three builders: computes the BDD of one node
// from its fanins' already-built BDDs. The caller guarantees topological
// order. Between nodes is the safe point for dynamic reordering: no refs
// live outside `refs` (and whatever the manager has registered).
void build_node_bdd(BddManager& mgr, const Node& n, NodeId id,
                    std::vector<BddManager::Ref>& refs) {
  switch (n.kind) {
    case NodeKind::kPi:
      break;  // set up front
    case NodeKind::kConst0:
      refs[id] = mgr.zero();
      break;
    case NodeKind::kConst1:
      refs[id] = mgr.one();
      break;
    case NodeKind::kLogic: {
      std::vector<BddManager::Ref> fanin_refs;
      fanin_refs.reserve(n.fanins.size());
      for (NodeId f : n.fanins) {
        assert(refs[f] != kNoBddRef && "fanin outside the built cone");
        fanin_refs.push_back(refs[f]);
      }
      refs[id] = eval_sop_bdd(mgr, n.sop, fanin_refs);
      break;
    }
  }
}

}  // namespace

NetworkBdds::NetworkBdds(const Network& net, size_t max_nodes)
    : net_(net),
      mgr_(net.num_pis(), max_nodes,
           cached_or_static_order(net, &order_key_, &seed_budget_)) {
  // On a cache hit seed_budget_ carries 2x the converged live count, so a
  // rebuild of the same content skips sifting until it outgrows the order
  // it was seeded with; 0 (miss) leaves the budget disabled.
  mgr_.set_reorder_budget(seed_budget_);
  refs_.assign(net.num_nodes(), kNoBddRef);
  mgr_.register_external_refs(&refs_);
  for (int i = 0; i < net.num_pis(); ++i) {
    refs_[net.pis()[i]] = mgr_.var(i);
  }
  for (NodeId id : net.topology()->topo()) {
    build_node_bdd(mgr_, net.node(id), id, refs_);
    // Safe point: every live ref is in the registered refs_ vector.
    if (mgr_.reorder_pending()) mgr_.reorder();
  }
  // The build survived the budget: whatever order it ended with (seeded,
  // or refined by sifting) is worth reusing for this network content.
  OrderCache::instance().store(order_key_,
                               {mgr_.export_order(), mgr_.live_nodes()});
}

NetworkBdds::~NetworkBdds() { mgr_.unregister_external_refs(&refs_); }

BddManager::Ref NetworkBdds::po_ref(int po_index) const {
  return refs_.at(net_.po(po_index).driver);
}

BddManager::Ref NetworkBdds::eval_sop(
    const Sop& sop, const std::vector<BddManager::Ref>& fanin_refs) {
  return eval_sop_bdd(mgr_, sop, fanin_refs);
}

std::vector<BddManager::Ref> build_cone_bdds(BddManager& mgr,
                                             const Network& net,
                                             const std::vector<NodeId>& roots) {
  trace::Span span("bdd.build_cones");
  std::vector<BddManager::Ref> refs(net.num_nodes(), kNoBddRef);
  for (int i = 0; i < net.num_pis(); ++i) refs[net.pis()[i]] = mgr.var(i);
  std::shared_ptr<const TopologyView> view = net.topology();
  ConeScratch scratch;
  std::vector<NodeId> cone;
  view->cone_of(roots, scratch, cone);
  for (NodeId id : cone) {
    build_node_bdd(mgr, net.node(id), id, refs);
    if (mgr.reorder_pending()) {
      // The partial refs vector is not registered with the manager: pass
      // it as extra roots and remap it by hand (kNoBddRef entries are
      // skipped on both sides of the contract).
      std::vector<BddManager::Ref> remap = mgr.reorder(refs);
      for (BddManager::Ref& r : refs) {
        if (r != kNoBddRef) r = remap[r];
      }
    }
  }
  return refs;
}

std::optional<BddManager::Ref> build_po_bdd(BddManager& mgr,
                                            const Network& net,
                                            int po_index) {
  try {
    std::vector<BddManager::Ref> refs(net.num_nodes(), kNoBddRef);
    for (int i = 0; i < net.num_pis(); ++i) refs[net.pis()[i]] = mgr.var(i);
    std::shared_ptr<const TopologyView> view = net.topology();
    ConeScratch scratch;
    std::vector<NodeId> cone;
    NodeId root = net.po(po_index).driver;
    view->cone_of(&root, 1, scratch, cone);
    for (NodeId id : cone) {
      build_node_bdd(mgr, net.node(id), id, refs);
      if (mgr.reorder_pending()) {
        std::vector<BddManager::Ref> remap = mgr.reorder(refs);
        for (BddManager::Ref& r : refs) {
          if (r != kNoBddRef) r = remap[r];
        }
      }
    }
    return refs[net.po(po_index).driver];
  } catch (const BddOverflow&) {
    return std::nullopt;
  }
}

}  // namespace apx
