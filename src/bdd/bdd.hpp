// A compact ROBDD package (CUDD-style, without complement edges) used as the
// implication/counting oracle for the synthesis flow: checking G => F for
// approximation correctness (paper Sec. 2.2) and computing approximation
// percentages by minterm counting (paper Sec. 2).
//
// Nodes live in an arena; references are indices. Terminals are 0 (false)
// and 1 (true). A node limit guards against blow-up; operations throw
// BddOverflow when exceeded so callers can fall back to SAT/simulation.
//
// Internals are tuned for the incremental oracle's access pattern:
//  * The unique table is an open-addressed flat array (power-of-two
//    capacity, linear probing, backward-shift deletion) over
//    splitmix64-mixed (var, lo, hi) keys — no per-node heap allocation,
//    cache-friendly probes.
//  * The ITE cache is a lossy direct-mapped table: collisions overwrite,
//    keeping memory bounded and lookups O(1).
//  * sat_fraction/support/size/cofactor reuse an epoch-stamped scratch
//    arena instead of allocating a memo per call; cofactor (and compose,
//    which recurses through it) is memoized per pass, so shared DAGs cost
//    O(nodes) instead of exponential plain recursion.
//  * garbage_collect() reclaims nodes unreachable from a caller-supplied
//    root set by mark-and-sweep compaction, so long-lived managers survive
//    many cone rebuilds without a from-scratch reconstruction.
//
// Variable ordering: the manager carries a permutation layer (PI index <->
// level). The external interface speaks variable indices throughout —
// var(i), evaluate bit i, support[i] — while the internal recursions
// branch by level, so any order is transparent to callers. A structural
// static order (network/ordering.hpp) seeds the permutation; Rudell
// sifting (reorder()) refines it dynamically with in-place adjacent-level
// swaps on the flat arena: a swap preserves every live Ref's identity and
// function, so only the garbage-collection phase of reorder() moves refs,
// and the returned remap follows the garbage_collect() contract. Clients
// holding long-lived refs register their vectors via
// register_external_refs(); reorder() uses them as GC roots and rewrites
// them in place. make_node latches a reorder request when the live arena
// crosses the growth threshold; cooperative callers poll reorder_pending()
// at safe points (no operation in flight) and invoke reorder().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace apx {

/// Thrown when the manager exceeds its configured node budget.
class BddOverflow : public std::runtime_error {
 public:
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

class BddManager {
 public:
  using Ref = uint32_t;

  /// Returned by garbage_collect() for refs that were not reachable from
  /// the supplied roots (their nodes are gone).
  static constexpr Ref kInvalidRef = 0xFFFFFFFFu;

  /// `max_nodes` bounds the live arena (default ~8M nodes = ~128 MB).
  /// `level_to_var`, when non-empty, must be a permutation of
  /// 0..num_vars-1: position l holds the variable placed at level l
  /// (level 0 = top). Empty selects the identity order.
  explicit BddManager(int num_vars, size_t max_nodes = 8u << 20,
                      std::vector<int> level_to_var = {});

  int num_vars() const { return num_vars_; }
  /// Arena extent, including freed (reusable) slots.
  size_t num_nodes() const { return var_.size(); }
  /// Nodes currently alive (arena minus the free list).
  size_t live_nodes() const { return var_.size() - free_list_.size(); }

  Ref zero() const { return 0; }
  Ref one() const { return 1; }

  /// BDD for variable `var` (position in the order given by the
  /// permutation layer; identity unless constructed/reordered otherwise).
  Ref var(int var);
  /// BDD for the literal var / var'.
  Ref literal(int var, bool positive);

  /// Current level of variable `var` / variable at `level` (diagnostics,
  /// tests, and the ordering benches).
  int level_of_var(int var) const { return var2level_[var]; }
  int var_at_level(int level) const { return level2var_[level]; }

  Ref bdd_not(Ref f);
  Ref bdd_and(Ref f, Ref g);
  Ref bdd_or(Ref f, Ref g);
  Ref bdd_xor(Ref f, Ref g);
  Ref bdd_ite(Ref f, Ref g, Ref h);

  /// Does f imply g (f & ~g == 0)?
  bool implies(Ref f, Ref g);

  /// Fraction of the 2^num_vars minterm space on which f is 1.
  double sat_fraction(Ref f);

  /// Number of satisfying minterms (as double; exact up to 2^53).
  double sat_count(Ref f);

  /// Cofactor f with var=value (memoized per call over f's DAG).
  Ref cofactor(Ref f, int var, bool value);

  /// Existential quantification: exists var. f = f|var=0 OR f|var=1.
  Ref exists(Ref f, int var);
  /// Universal quantification: forall var. f = f|var=0 AND f|var=1.
  Ref forall(Ref f, int var);
  /// Quantifies a set of variables (bitmask by index).
  Ref exists_many(Ref f, const std::vector<bool>& vars);

  /// Boolean difference d f / d var (the observability function of var).
  Ref boolean_difference(Ref f, int var);

  /// Substitutes function g for variable var inside f (compose).
  Ref compose(Ref f, int var, Ref g);

  /// Evaluate f on a full assignment (bit i of `input` = variable i).
  bool evaluate(Ref f, uint64_t input) const;

  /// Variable support of f as a bitmask vector.
  std::vector<bool> support(Ref f) const;

  /// Structural size (number of distinct internal nodes) of f.
  size_t size(Ref f) const;

  /// Mark-and-sweep: keeps only nodes reachable from `roots` (terminals
  /// always survive), compacts the arena and rebuilds the unique table.
  /// Returns the old-ref -> new-ref map (kInvalidRef for collected nodes);
  /// every Ref held by the caller MUST be remapped through it. The ITE
  /// cache and scratch memos are invalidated.
  std::vector<Ref> garbage_collect(const std::vector<Ref>& roots);

  // ---- dynamic reordering ----

  /// Registers a vector of externally held refs. Registered vectors are
  /// used as garbage-collection roots by reorder() and are rewritten in
  /// place through the remap (entries equal to kInvalidRef are skipped,
  /// matching the build_cone_bdds sentinel). The pointer must stay valid
  /// until unregistered or the manager is destroyed; the vector may be
  /// reassigned (same object) freely between calls.
  void register_external_refs(std::vector<Ref>* slots);
  void unregister_external_refs(std::vector<Ref>* slots);

  /// Garbage-collects from the registered vectors plus `extra_roots`,
  /// then runs Rudell sifting passes over the compacted arena. Adjacent-
  /// level swaps are in-place and function-preserving, so the returned
  /// remap — which callers holding *unregistered* refs (the extras) MUST
  /// apply, per the garbage_collect contract — comes entirely from the
  /// collection phase. Registered vectors are rewritten automatically; do
  /// not also pass their contents as extras (the remap would be applied
  /// twice). With no registered vectors and no extras this is a no-op
  /// returning the identity map.
  std::vector<Ref> reorder(const std::vector<Ref>& extra_roots = {});

  /// True when make_node crossed the growth threshold since the last
  /// reorder: cooperative callers should invoke reorder() at their next
  /// safe point (no refs in flight outside registered vectors).
  bool reorder_pending() const { return reorder_pending_; }

  /// Enables/disables the make_node growth trigger (sifting via an
  /// explicit reorder() call works either way). The threshold is the live
  /// node count that latches reorder_pending_; it doubles after every
  /// reorder so a structurally big result cannot thrash.
  void set_auto_reorder(bool enabled) { auto_reorder_ = enabled; }
  /// Replaces the growth threshold and re-evaluates the latched request
  /// against it: raising the threshold above the current live count clears
  /// a pending reorder (it would sift a table that no longer qualifies),
  /// and lowering it below the live count latches one.
  void set_reorder_threshold(size_t threshold) {
    reorder_threshold_ = threshold;
    if (auto_reorder_ && !in_reorder_) {
      reorder_pending_ = live_nodes() >= reorder_threshold_;
    }
  }

  /// Arms the reorder budget: while the live-node count stays at or below
  /// `budget`, reorder() skips sifting entirely (the pending latch is
  /// cleared, the growth threshold backs off past the current live count,
  /// and the identity remap is returned — refs stay valid). Callers
  /// seeding a previously converged order use this so the seeded build
  /// does not pay for sifting again until it outgrows what the converged
  /// order achieved. The growth trigger still latches normally; the skip
  /// happens (and is counted) at the reorder() safe point. 0 (the
  /// default) disables the budget.
  void set_reorder_budget(size_t budget) { reorder_budget_ = budget; }
  size_t reorder_budget() const { return reorder_budget_; }

  /// Current variable order, top level first: position l holds the
  /// variable at level l (the `level_to_var` shape the constructor and
  /// seed_order accept). The terminal sentinel is excluded.
  std::vector<int> export_order() const {
    return std::vector<int>(level2var_.begin(), level2var_.end() - 1);
  }

  /// Installs a previously converged var<->level permutation. Only legal
  /// on an empty manager (no internal nodes yet): seeding reinterprets
  /// which variable every level refers to, which would silently change
  /// the function of existing nodes. Throws std::logic_error otherwise or
  /// when `level_to_var` is not a permutation of 0..num_vars-1.
  void seed_order(const std::vector<int>& level_to_var);

  /// Hash-quality / workload counters (monotone since construction).
  struct Stats {
    uint64_t unique_lookups = 0;  ///< make_node unique-table lookups
    uint64_t unique_probes = 0;   ///< slots inspected across those lookups
    uint64_t ite_hits = 0;
    uint64_t ite_misses = 0;
    uint64_t peak_nodes = 0;    ///< max live nodes ever in the arena
    uint64_t gc_runs = 0;       ///< garbage_collect invocations
    uint64_t reorder_runs = 0;  ///< reorder() invocations that sifted
    uint64_t reorder_skipped = 0;  ///< reorder() calls absorbed by the budget
    double reorder_time_ms = 0.0;  ///< total wall time inside reorder()
    /// Mean slots inspected per unique-table lookup (1.0 = collision-free).
    double avg_probe_length() const {
      return unique_lookups ? static_cast<double>(unique_probes) /
                                  static_cast<double>(unique_lookups)
                            : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Children pair of one arena slot. 8 bytes and 8-aligned in its own
  /// array, so an entry never straddles a cache line — unlike the legacy
  /// 12-byte {var, lo, hi} AoS node, which crossed a line boundary every
  /// other slot. Variable labels live in the parallel int32 `var_` array
  /// (16 per line), so label-only sweeps (free-slot checks, occupancy
  /// counts, var_nodes_ maintenance) touch a quarter of the lines the AoS
  /// layout did.
  struct BddChildren {
    Ref lo;
    Ref hi;
  };

  /// Arena slots on the free list carry this var marker.
  static constexpr int32_t kFreeVar = -1;

  // Lossy direct-mapped ITE cache entry; `f == kInvalidRef` marks empty.
  struct IteEntry {
    Ref f = kInvalidRef;
    Ref g = 0;
    Ref h = 0;
    Ref result = 0;
  };

  /// splitmix64 finalizer: full-avalanche mixing so sequential Refs (the
  /// common case: nodes are allocated in topological waves) spread over
  /// the whole table instead of clustering in the low bits.
  static uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  static uint64_t hash_triple(int32_t var, Ref lo, Ref hi) {
    uint64_t packed = (static_cast<uint64_t>(lo) << 32) | hi;
    return mix64(packed ^ (static_cast<uint64_t>(static_cast<uint32_t>(var)) *
                           0x9E3779B97F4A7C15ULL));
  }

  Ref make_node(int32_t var, Ref lo, Ref hi);
  int32_t var_of(Ref f) const { return var_[f]; }
  int32_t level_of(Ref f) const { return var2level_[var_[f]]; }
  Ref ite_rec(Ref f, Ref g, Ref h);
  size_t unique_find_slot(int32_t var, Ref lo, Ref hi) const;
  void unique_insert(Ref id);
  void unique_erase(Ref id);
  void unique_grow();
  Ref alloc_node(int32_t var, Ref lo, Ref hi);
  double sat_fraction_rec(Ref f);
  Ref cofactor_rec(Ref f, int32_t vlevel, bool value);
  /// Bumps the scratch epoch and sizes the stamp arena to the arena.
  void begin_scratch_pass() const;

  // ---- sifting internals (valid only inside reorder()) ----
  void sift(const std::vector<Ref>& roots);
  void sift_var(int var);
  void swap_levels(int level);
  void build_interaction_matrix(const std::vector<Ref>& roots);
  bool interacts(int32_t u, int32_t v) const {
    return (interact_[static_cast<size_t>(u) * interact_words_ +
                      static_cast<size_t>(v) / 64] >>
            (static_cast<size_t>(v) % 64)) &
           1u;
  }
  Ref swap_find_or_make(int32_t var, Ref lo, Ref hi);
  void deref(Ref r);
  size_t live_internal() const { return var_.size() - 2 - free_list_.size(); }

  int num_vars_;
  size_t max_nodes_;
  // Node arena, split SoA (see BddChildren). var_[r] is the variable label
  // of slot r (terminals use the num_vars sentinel, freed slots kFreeVar);
  // kids_[r] holds its children. Both arrays always have identical size.
  std::vector<int32_t> var_;
  std::vector<BddChildren> kids_;

  // Permutation layer: both arrays have num_vars_+1 entries; the last maps
  // the terminal sentinel to itself so level_of works on terminals.
  std::vector<int> var2level_;
  std::vector<int> level2var_;

  // Open-addressed unique table: slots hold Refs into the arena (kInvalidRef
  // = empty). Capacity is a power of two; grown at ~70% load.
  std::vector<Ref> unique_slots_;
  size_t unique_count_ = 0;

  std::vector<IteEntry> ite_cache_;  // power-of-two, direct-mapped, lossy

  // Epoch-stamped scratch arena shared by sat_fraction/support/size/
  // cofactor: stamp_[r] == stamp_epoch_ means "visited this pass" (with
  // frac_memo_[r] / ref_memo_[r] valid for the pass kind that stamped).
  // No per-call allocation.
  mutable std::vector<uint32_t> stamp_;
  mutable std::vector<double> frac_memo_;
  mutable std::vector<Ref> ref_memo_;
  mutable uint32_t stamp_epoch_ = 0;

  // Reordering state. free_list_ holds arena slots vacated by sifting
  // (alloc_node reuses them before growing the arena); parent_count_ and
  // var_nodes_ are per-reorder scratch (in-arena reference counts seeded
  // with root pins, and per-variable node lists, both maintained across
  // swaps).
  /// Validates and installs a level_to_var permutation into var2level_/
  /// level2var_ (shared by the constructor and seed_order).
  void install_order(const std::vector<int>& level_to_var);

  bool auto_reorder_ = true;
  bool reorder_pending_ = false;
  bool in_reorder_ = false;
  size_t reorder_threshold_;
  size_t reorder_budget_ = 0;
  std::vector<Ref> free_list_;
  std::vector<std::vector<Ref>*> external_slots_;
  std::vector<uint32_t> parent_count_;
  std::vector<std::vector<Ref>> var_nodes_;
  // Per-reorder variable interaction matrix (row-major bitset): u and v
  // interact iff they co-occur in some root's support. Support is a
  // property of the functions, not the order, so the matrix stays valid
  // across every swap of one sift run.
  std::vector<uint64_t> interact_;
  size_t interact_words_ = 0;

  mutable Stats stats_;
};

}  // namespace apx
