// A compact ROBDD package (CUDD-style, without complement edges) used as the
// implication/counting oracle for the synthesis flow: checking G => F for
// approximation correctness (paper Sec. 2.2) and computing approximation
// percentages by minterm counting (paper Sec. 2).
//
// Nodes live in an arena; references are indices. Terminals are 0 (false)
// and 1 (true). A node limit guards against blow-up; operations throw
// BddOverflow when exceeded so callers can fall back to SAT/simulation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace apx {

/// Thrown when the manager exceeds its configured node budget.
class BddOverflow : public std::runtime_error {
 public:
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

class BddManager {
 public:
  using Ref = uint32_t;

  /// `max_nodes` bounds the arena (default ~8M nodes = ~128 MB).
  explicit BddManager(int num_vars, size_t max_nodes = 8u << 20);

  int num_vars() const { return num_vars_; }
  size_t num_nodes() const { return nodes_.size(); }

  Ref zero() const { return 0; }
  Ref one() const { return 1; }

  /// BDD for variable `var` (variable order = index order).
  Ref var(int var);
  /// BDD for the literal var / var'.
  Ref literal(int var, bool positive);

  Ref bdd_not(Ref f);
  Ref bdd_and(Ref f, Ref g);
  Ref bdd_or(Ref f, Ref g);
  Ref bdd_xor(Ref f, Ref g);
  Ref bdd_ite(Ref f, Ref g, Ref h);

  /// Does f imply g (f & ~g == 0)?
  bool implies(Ref f, Ref g);

  /// Fraction of the 2^num_vars minterm space on which f is 1.
  double sat_fraction(Ref f);

  /// Number of satisfying minterms (as double; exact up to 2^53).
  double sat_count(Ref f);

  /// Cofactor f with var=value.
  Ref cofactor(Ref f, int var, bool value);

  /// Existential quantification: exists var. f = f|var=0 OR f|var=1.
  Ref exists(Ref f, int var);
  /// Universal quantification: forall var. f = f|var=0 AND f|var=1.
  Ref forall(Ref f, int var);
  /// Quantifies a set of variables (bitmask by index).
  Ref exists_many(Ref f, const std::vector<bool>& vars);

  /// Boolean difference d f / d var (the observability function of var).
  Ref boolean_difference(Ref f, int var);

  /// Substitutes function g for variable var inside f (compose).
  Ref compose(Ref f, int var, Ref g);

  /// Evaluate f on a full assignment (bit i of `input` = variable i).
  bool evaluate(Ref f, uint64_t input) const;

  /// Variable support of f as a bitmask vector.
  std::vector<bool> support(Ref f) const;

  /// Structural size (number of distinct internal nodes) of f.
  size_t size(Ref f) const;

 private:
  struct BddNode {
    int32_t var;  // terminal nodes use var = num_vars (sentinel)
    Ref lo;
    Ref hi;
  };

  struct TripleHash {
    size_t operator()(const std::tuple<int32_t, Ref, Ref>& t) const {
      auto [v, l, h] = t;
      size_t x = static_cast<size_t>(v) * 0x9E3779B97F4A7C15ULL;
      x ^= (static_cast<size_t>(l) << 17) + 0x517CC1B727220A95ULL;
      x ^= static_cast<size_t>(h) * 0x2545F4914F6CDD1DULL;
      return x;
    }
  };
  struct OpHash {
    size_t operator()(const std::tuple<Ref, Ref, Ref>& t) const {
      auto [f, g, h] = t;
      return (static_cast<size_t>(f) * 0x9E3779B97F4A7C15ULL) ^
             (static_cast<size_t>(g) << 21) ^
             (static_cast<size_t>(h) * 0x2545F4914F6CDD1DULL);
    }
  };

  Ref make_node(int32_t var, Ref lo, Ref hi);
  int32_t var_of(Ref f) const { return nodes_[f].var; }
  Ref ite_rec(Ref f, Ref g, Ref h);
  double sat_fraction_rec(Ref f, std::unordered_map<Ref, double>& memo);

  int num_vars_;
  size_t max_nodes_;
  std::vector<BddNode> nodes_;
  std::unordered_map<std::tuple<int32_t, Ref, Ref>, Ref, TripleHash> unique_;
  std::unordered_map<std::tuple<Ref, Ref, Ref>, Ref, OpHash> ite_cache_;
};

}  // namespace apx
