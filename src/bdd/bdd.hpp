// A compact ROBDD package (CUDD-style, without complement edges) used as the
// implication/counting oracle for the synthesis flow: checking G => F for
// approximation correctness (paper Sec. 2.2) and computing approximation
// percentages by minterm counting (paper Sec. 2).
//
// Nodes live in an arena; references are indices. Terminals are 0 (false)
// and 1 (true). A node limit guards against blow-up; operations throw
// BddOverflow when exceeded so callers can fall back to SAT/simulation.
//
// Internals are tuned for the incremental oracle's access pattern:
//  * The unique table is an open-addressed flat array (power-of-two
//    capacity, linear probing) over splitmix64-mixed (var, lo, hi) keys —
//    no per-node heap allocation, cache-friendly probes.
//  * The ITE cache is a lossy direct-mapped table: collisions overwrite,
//    keeping memory bounded and lookups O(1).
//  * sat_fraction/support/size reuse an epoch-stamped scratch arena instead
//    of allocating a memo per call.
//  * garbage_collect() reclaims nodes unreachable from a caller-supplied
//    root set by mark-and-sweep compaction, so long-lived managers survive
//    many cone rebuilds without a from-scratch reconstruction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace apx {

/// Thrown when the manager exceeds its configured node budget.
class BddOverflow : public std::runtime_error {
 public:
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

class BddManager {
 public:
  using Ref = uint32_t;

  /// Returned by garbage_collect() for refs that were not reachable from
  /// the supplied roots (their nodes are gone).
  static constexpr Ref kInvalidRef = 0xFFFFFFFFu;

  /// `max_nodes` bounds the arena (default ~8M nodes = ~128 MB).
  explicit BddManager(int num_vars, size_t max_nodes = 8u << 20);

  int num_vars() const { return num_vars_; }
  size_t num_nodes() const { return nodes_.size(); }

  Ref zero() const { return 0; }
  Ref one() const { return 1; }

  /// BDD for variable `var` (variable order = index order).
  Ref var(int var);
  /// BDD for the literal var / var'.
  Ref literal(int var, bool positive);

  Ref bdd_not(Ref f);
  Ref bdd_and(Ref f, Ref g);
  Ref bdd_or(Ref f, Ref g);
  Ref bdd_xor(Ref f, Ref g);
  Ref bdd_ite(Ref f, Ref g, Ref h);

  /// Does f imply g (f & ~g == 0)?
  bool implies(Ref f, Ref g);

  /// Fraction of the 2^num_vars minterm space on which f is 1.
  double sat_fraction(Ref f);

  /// Number of satisfying minterms (as double; exact up to 2^53).
  double sat_count(Ref f);

  /// Cofactor f with var=value.
  Ref cofactor(Ref f, int var, bool value);

  /// Existential quantification: exists var. f = f|var=0 OR f|var=1.
  Ref exists(Ref f, int var);
  /// Universal quantification: forall var. f = f|var=0 AND f|var=1.
  Ref forall(Ref f, int var);
  /// Quantifies a set of variables (bitmask by index).
  Ref exists_many(Ref f, const std::vector<bool>& vars);

  /// Boolean difference d f / d var (the observability function of var).
  Ref boolean_difference(Ref f, int var);

  /// Substitutes function g for variable var inside f (compose).
  Ref compose(Ref f, int var, Ref g);

  /// Evaluate f on a full assignment (bit i of `input` = variable i).
  bool evaluate(Ref f, uint64_t input) const;

  /// Variable support of f as a bitmask vector.
  std::vector<bool> support(Ref f) const;

  /// Structural size (number of distinct internal nodes) of f.
  size_t size(Ref f) const;

  /// Mark-and-sweep: keeps only nodes reachable from `roots` (terminals
  /// always survive), compacts the arena and rebuilds the unique table.
  /// Returns the old-ref -> new-ref map (kInvalidRef for collected nodes);
  /// every Ref held by the caller MUST be remapped through it. The ITE
  /// cache and scratch memos are invalidated.
  std::vector<Ref> garbage_collect(const std::vector<Ref>& roots);

  /// Hash-quality / workload counters (monotone since construction).
  struct Stats {
    uint64_t unique_lookups = 0;  ///< make_node unique-table lookups
    uint64_t unique_probes = 0;   ///< slots inspected across those lookups
    uint64_t ite_hits = 0;
    uint64_t ite_misses = 0;
    /// Mean slots inspected per unique-table lookup (1.0 = collision-free).
    double avg_probe_length() const {
      return unique_lookups ? static_cast<double>(unique_probes) /
                                  static_cast<double>(unique_lookups)
                            : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  struct BddNode {
    int32_t var;  // terminal nodes use var = num_vars (sentinel)
    Ref lo;
    Ref hi;
  };

  // Lossy direct-mapped ITE cache entry; `f == kInvalidRef` marks empty.
  struct IteEntry {
    Ref f = kInvalidRef;
    Ref g = 0;
    Ref h = 0;
    Ref result = 0;
  };

  /// splitmix64 finalizer: full-avalanche mixing so sequential Refs (the
  /// common case: nodes are allocated in topological waves) spread over
  /// the whole table instead of clustering in the low bits.
  static uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  static uint64_t hash_triple(int32_t var, Ref lo, Ref hi) {
    uint64_t packed = (static_cast<uint64_t>(lo) << 32) | hi;
    return mix64(packed ^ (static_cast<uint64_t>(static_cast<uint32_t>(var)) *
                           0x9E3779B97F4A7C15ULL));
  }

  Ref make_node(int32_t var, Ref lo, Ref hi);
  int32_t var_of(Ref f) const { return nodes_[f].var; }
  Ref ite_rec(Ref f, Ref g, Ref h);
  void unique_insert(Ref id);
  void unique_grow();
  double sat_fraction_rec(Ref f);
  /// Bumps the scratch epoch and sizes the stamp arena to the arena.
  void begin_scratch_pass() const;

  int num_vars_;
  size_t max_nodes_;
  std::vector<BddNode> nodes_;

  // Open-addressed unique table: slots hold Refs into nodes_ (kInvalidRef
  // = empty). Capacity is a power of two; grown at ~70% load.
  std::vector<Ref> unique_slots_;
  size_t unique_count_ = 0;

  std::vector<IteEntry> ite_cache_;  // power-of-two, direct-mapped, lossy

  // Epoch-stamped scratch arena shared by sat_fraction/support/size:
  // stamp_[r] == stamp_epoch_ means "visited this pass" (and frac_memo_[r]
  // valid for sat_fraction passes). No per-call allocation.
  mutable std::vector<uint32_t> stamp_;
  mutable std::vector<double> frac_memo_;
  mutable uint32_t stamp_epoch_ = 0;

  mutable Stats stats_;
};

}  // namespace apx
