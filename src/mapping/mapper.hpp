// Technology mapping: decomposes each node's SOP into primitive library
// gates, producing a mapped Network whose logic nodes are all 1-3 input
// library gates. Gate count is the paper's area metric; unit-delay depth is
// its delay metric.
#pragma once

#include "mapping/library.hpp"
#include "network/network.hpp"

namespace apx {

struct MapOptions {
  const GateLibrary* library = &GateLibrary::basic();
  ScriptKind script = ScriptKind::kBalance;
};

/// Maps `net` into primitive gates of the chosen library. The mapped
/// network has the same PIs (by position/name) and POs (by name/order).
Network technology_map(const Network& net, const MapOptions& options = {});

/// Area = number of logic gates in a mapped netlist (paper Table 1/2).
int mapped_area(const Network& mapped);

/// Unit-delay critical path depth.
int mapped_delay(const Network& mapped);

/// True if every logic node is a recognizable primitive of <= 3 inputs.
bool is_mapped(const Network& net);

}  // namespace apx
