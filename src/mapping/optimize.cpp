#include "mapping/optimize.hpp"

#include <unordered_map>

#include "aig/convert.hpp"
#include "network/topology_view.hpp"
#include "sop/algebraic.hpp"
#include "sop/minimize.hpp"

namespace apx {
namespace {

// Drops SOP variables no cube binds, compacting the fanin list to match.
void compact_node(std::vector<NodeId>& fanins, Sop& sop) {
  const int n = sop.num_vars();
  std::vector<bool> used(n, false);
  for (const Cube& c : sop.cubes()) {
    for (int v = 0; v < n; ++v) {
      if (c.get(v) != LitCode::kFree) used[v] = true;
    }
  }
  std::vector<int> new_index(n, -1);
  std::vector<NodeId> new_fanins;
  for (int v = 0; v < n; ++v) {
    if (used[v]) {
      new_index[v] = static_cast<int>(new_fanins.size());
      new_fanins.push_back(fanins[v]);
    }
  }
  if (new_fanins.size() == fanins.size()) return;
  Sop compacted(static_cast<int>(new_fanins.size()));
  for (const Cube& c : sop.cubes()) {
    Cube nc = Cube::full(compacted.num_vars());
    for (int v = 0; v < n; ++v) {
      if (new_index[v] >= 0) nc.set(new_index[v], c.get(v));
    }
    compacted.add_cube(nc);
  }
  fanins = std::move(new_fanins);
  sop = std::move(compacted);
}

// Is the node a buffer (sop == "1") or an inverter (sop == "0")?
bool is_buffer_sop(const Sop& sop) {
  return sop.num_vars() == 1 && sop.num_cubes() == 1 &&
         sop.cube(0).get(0) == LitCode::kPos;
}
bool is_inverter_sop(const Sop& sop) {
  return sop.num_vars() == 1 && sop.num_cubes() == 1 &&
         sop.cube(0).get(0) == LitCode::kNeg;
}

struct StrashKey {
  std::vector<NodeId> fanins;
  std::string sop_text;
  bool operator==(const StrashKey& o) const {
    return fanins == o.fanins && sop_text == o.sop_text;
  }
};
struct StrashHash {
  size_t operator()(const StrashKey& k) const {
    size_t h = std::hash<std::string>()(k.sop_text);
    for (NodeId f : k.fanins) h = h * 0x9E3779B9u + static_cast<size_t>(f);
    return h;
  }
};

}  // namespace

Network optimize(const Network& net, const OptimizeOptions& options) {
  Network result;
  result.set_name(net.name());
  // Resolution of each original node into the result network. A node maps
  // to a result node id; constants and aliases resolve transparently.
  std::vector<NodeId> map(net.num_nodes(), kNullNode);
  NodeId const0 = kNullNode, const1 = kNullNode;
  auto get_const = [&](bool v) {
    NodeId& c = v ? const1 : const0;
    if (c == kNullNode) c = result.add_const(v);
    return c;
  };
  auto kind_of = [&](NodeId rid) { return result.node(rid).kind; };

  std::unordered_map<StrashKey, NodeId, StrashHash> strash;

  for (NodeId pi : net.pis()) map[pi] = result.add_pi(net.node(pi).name);
  const std::shared_ptr<const TopologyView> view = net.topology();
  for (NodeId id : view->topo()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    if (n.kind == NodeKind::kConst0) {
      map[id] = get_const(false);
      continue;
    }
    if (n.kind == NodeKind::kConst1) {
      map[id] = get_const(true);
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (NodeId f : n.fanins) fanins.push_back(map[f]);
    Sop sop = n.sop;

    if (options.sweep_constants) {
      // Substitute constant fanins.
      for (int v = 0; v < sop.num_vars(); ++v) {
        if (kind_of(fanins[v]) == NodeKind::kConst0) {
          sop = sop.cofactor(v, false);
        } else if (kind_of(fanins[v]) == NodeKind::kConst1) {
          sop = sop.cofactor(v, true);
        }
      }
      sop.make_scc_free();
    }

    // Fuse duplicate fanins: if positions i and j reference the same node,
    // each cube's constraints on them intersect into position i.
    {
      bool has_dup = false;
      for (size_t i = 0; i < fanins.size() && !has_dup; ++i) {
        for (size_t j = i + 1; j < fanins.size(); ++j) {
          if (fanins[i] == fanins[j]) {
            has_dup = true;
            break;
          }
        }
      }
      if (has_dup) {
        Sop fused(sop.num_vars());
        for (const Cube& c : sop.cubes()) {
          Cube nc = c;
          for (size_t i = 0; i < fanins.size(); ++i) {
            for (size_t j = i + 1; j < fanins.size(); ++j) {
              if (fanins[i] != fanins[j]) continue;
              auto meet = static_cast<LitCode>(
                  static_cast<uint8_t>(nc.get(static_cast<int>(i))) &
                  static_cast<uint8_t>(nc.get(static_cast<int>(j))));
              nc.set(static_cast<int>(i), meet);
              nc.set(static_cast<int>(j), LitCode::kFree);
            }
          }
          fused.add_cube(nc);  // drops cubes made empty by the meet
        }
        fused.make_scc_free();
        sop = std::move(fused);
      }
    }

    if (options.minimize_sops && sop.num_vars() <= 12 && !sop.empty()) {
      sop = minimize(sop);
    }

    // Constant folding after substitution/minimization.
    if (sop.empty()) {
      map[id] = get_const(false);
      continue;
    }
    if (Sop::tautology(sop)) {
      map[id] = get_const(true);
      continue;
    }
    compact_node(fanins, sop);

    if (options.collapse_buffers && is_buffer_sop(sop)) {
      map[id] = fanins[0];
      continue;
    }
    if (options.collapse_buffers && is_inverter_sop(sop)) {
      // INV(INV(x)) -> x.
      const Node& g = result.node(fanins[0]);
      if (g.kind == NodeKind::kLogic && is_inverter_sop(g.sop)) {
        map[id] = g.fanins[0];
        continue;
      }
    }

    Sop canon = sop;
    canon.canonicalize();
    StrashKey key{fanins, canon.to_string()};
    auto it = strash.find(key);
    if (it != strash.end()) {
      map[id] = it->second;
      continue;
    }
    map[id] = result.add_node(fanins, std::move(sop), n.name);
    strash.emplace(std::move(key), map[id]);
  }

  for (const PrimaryOutput& po : net.pos()) {
    result.add_po(po.name, map[po.driver]);
  }
  result.cleanup();
  if (options.resubstitute) {
    resubstitute(result);
    result.cleanup();
  }
  result.check();
  return result;
}

Network quick_synthesis(const Network& net) {
  return quick_synthesis(net, kAigQuickSynthesisThreshold);
}

Network quick_synthesis(const Network& net, int aig_threshold) {
  if (aig_threshold >= 0 && net.num_logic_nodes() >= aig_threshold) {
    // Above the threshold the SOP-level pass (per-node covers, string
    // strash keys) stops being "quick"; the AIG substrate takes over.
    return aig::aig_quick_synthesis(net);
  }
  return optimize(net);
}

int resubstitute(Network& net) {
  // `order` pins the pre-rewrite topological order for the sweep (the
  // legacy code iterated a by-value snapshot with the same property);
  // `info` supplies levels and CSR fanout adjacency and is refreshed after
  // each rewrite, exactly where the legacy levels/fanouts recompute sat.
  const std::shared_ptr<const TopologyView> order = net.topology();
  std::shared_ptr<const TopologyView> info = order;
  int rewrites = 0;

  for (NodeId id : order->topo()) {
    const Node& n = net.node(id);
    if (n.kind != NodeKind::kLogic) continue;
    if (n.fanins.size() < 2 || n.sop.num_cubes() < 2) continue;

    // Map from network node -> variable index within n's SOP.
    std::unordered_map<NodeId, int> var_of;
    for (size_t v = 0; v < n.fanins.size(); ++v) {
      var_of[n.fanins[v]] = static_cast<int>(v);
    }

    // Candidate divisors: logic nodes fed by at least two of n's fanins,
    // with every fanin inside n's fanin set and a strictly smaller level
    // (which rules out any dependency of the divisor on n).
    std::unordered_map<NodeId, int> shared;
    for (NodeId f : n.fanins) {
      for (NodeId out : info->fanouts(f)) ++shared[out];
    }
    const Node* best_divisor = nullptr;
    NodeId best_divisor_id = kNullNode;
    Sop best_new_sop(0);
    int best_savings = 0;

    for (const auto& [cand, count] : shared) {
      if (cand == id || count < 2) continue;
      const Node& d = net.node(cand);
      if (d.kind != NodeKind::kLogic) continue;
      if (info->level(cand) > info->level(id)) {
        continue;  // same level cannot depend on id
      }
      if (d.sop.num_cubes() < 2) continue;  // single cubes rarely help
      bool subset = true;
      for (NodeId f : d.fanins) {
        if (!var_of.count(f)) {
          subset = false;
          break;
        }
      }
      if (!subset) continue;

      // Remap d's SOP into n's variable space.
      Sop divisor(n.sop.num_vars());
      for (const Cube& c : d.sop.cubes()) {
        Cube remapped = Cube::full(n.sop.num_vars());
        for (int v = 0; v < d.sop.num_vars(); ++v) {
          LitCode code = c.get(v);
          if (code != LitCode::kFree) {
            remapped.set(var_of.at(d.fanins[v]), code);
          }
        }
        divisor.add_cube(remapped);
      }
      auto [q, r] = algebraic_divide(n.sop, divisor);
      if (q.empty()) continue;

      // Rewritten SOP over fanins + the divisor signal as a new variable.
      const int nv = n.sop.num_vars();
      Sop rewritten(nv + 1);
      for (const Cube& c : q.cubes()) {
        Cube wide = Cube::full(nv + 1);
        for (int v = 0; v < nv; ++v) wide.set(v, c.get(v));
        wide.set(nv, LitCode::kPos);
        rewritten.add_cube(wide);
      }
      for (const Cube& c : r.cubes()) {
        Cube wide = Cube::full(nv + 1);
        for (int v = 0; v < nv; ++v) wide.set(v, c.get(v));
        rewritten.add_cube(wide);
      }
      int savings = n.sop.literal_count() -
                    (rewritten.literal_count());
      if (savings > best_savings) {
        best_savings = savings;
        best_divisor = &d;
        best_divisor_id = cand;
        best_new_sop = std::move(rewritten);
      }
    }
    if (best_divisor != nullptr) {
      std::vector<NodeId> fanins = n.fanins;
      fanins.push_back(best_divisor_id);
      Sop sop = best_new_sop;
      compact_node(fanins, sop);
      net.set_function(id, std::move(fanins), std::move(sop));
      ++rewrites;
      // Levels may have grown through the new edge; refresh the snapshot.
      info = net.topology();
    }
  }
  return rewrites;
}

void compact_unused_fanins(Network& net) {
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    Node& n = net.node(id);
    if (n.kind != NodeKind::kLogic) continue;
    std::vector<NodeId> fanins = n.fanins;
    Sop sop = n.sop;
    compact_node(fanins, sop);
    if (fanins.size() != n.fanins.size()) {
      net.set_function(id, std::move(fanins), std::move(sop));
    }
  }
}

}  // namespace apx
