// Light technology-independent optimization ("quick synthesis", paper
// Sec. 3): constant sweeping, buffer/inverter collapsing, per-node SOP
// minimization, and elimination of trivially absorbable nodes. Applied
// before mapping and before approximate synthesis.
#pragma once

#include "network/network.hpp"

namespace apx {

struct OptimizeOptions {
  bool sweep_constants = true;
  bool collapse_buffers = true;
  bool minimize_sops = true;
  /// Collapse single-fanout nodes into their fanout when the merged SOP does
  /// not grow past this many cubes (0 disables elimination).
  int eliminate_cube_limit = 0;
  /// Run algebraic resubstitution after the per-node pass: re-express nodes
  /// using existing nodes as divisors when that saves literals.
  bool resubstitute = false;
};

/// Returns an optimized copy of `net` (same PIs/POs).
Network optimize(const Network& net, const OptimizeOptions& options = {});

/// Quick-synthesis preset used before reliability analysis and mapping.
Network quick_synthesis(const Network& net);

/// Drops fanins (and the matching SOP variables) that no cube of a node
/// binds, across the whole network, so cleanup() can remove logic that only
/// fed now-unused literals. Mutates `net` in place.
void compact_unused_fanins(Network& net);

/// Algebraic resubstitution: for each node f, looks for an existing node d
/// (with fanins drawn from f's fanins, at a strictly smaller level) whose
/// SOP algebraically divides f's; when the rewrite f = q*d + r saves
/// literals, f's SOP is re-expressed over {fanins, d}. Returns the number
/// of rewrites performed. Mutates `net` in place; functions are preserved.
int resubstitute(Network& net);

}  // namespace apx
