// Light technology-independent optimization ("quick synthesis", paper
// Sec. 3): constant sweeping, buffer/inverter collapsing, per-node SOP
// minimization, and elimination of trivially absorbable nodes. Applied
// before mapping and before approximate synthesis.
#pragma once

#include "network/network.hpp"

namespace apx {

struct OptimizeOptions {
  bool sweep_constants = true;
  bool collapse_buffers = true;
  bool minimize_sops = true;
  /// Collapse single-fanout nodes into their fanout when the merged SOP does
  /// not grow past this many cubes (0 disables elimination).
  int eliminate_cube_limit = 0;
  /// Run algebraic resubstitution after the per-node pass: re-express nodes
  /// using existing nodes as divisors when that saves literals.
  bool resubstitute = false;
};

/// Returns an optimized copy of `net` (same PIs/POs).
Network optimize(const Network& net, const OptimizeOptions& options = {});

/// Logic-node count at or above which quick_synthesis switches from the
/// SOP-level optimize() pass to the AIG substrate (structural hashing +
/// NPN-canonical cut rewriting). Every circuit in the committed benchmark
/// suite sits below this, so their synthesis results — and the bench
/// artifacts derived from them — are bit-identical to the pre-AIG flow;
/// the generated 10k+-gate circuits sit above it and scale.
inline constexpr int kAigQuickSynthesisThreshold = 5000;

/// Quick-synthesis preset used before reliability analysis and mapping.
/// Dispatches on `aig_threshold` (see kAigQuickSynthesisThreshold; pass
/// 0 to force the AIG path, a negative value to disable it).
Network quick_synthesis(const Network& net);
Network quick_synthesis(const Network& net, int aig_threshold);

/// Drops fanins (and the matching SOP variables) that no cube of a node
/// binds, across the whole network, so cleanup() can remove logic that only
/// fed now-unused literals. Mutates `net` in place.
void compact_unused_fanins(Network& net);

/// Algebraic resubstitution: for each node f, looks for an existing node d
/// (with fanins drawn from f's fanins, at a strictly smaller level) whose
/// SOP algebraically divides f's; when the rewrite f = q*d + r saves
/// literals, f's SOP is re-expressed over {fanins, d}. Returns the number
/// of rewrites performed. Mutates `net` in place; functions are preserved.
int resubstitute(Network& net);

}  // namespace apx
