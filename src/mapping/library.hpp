// Gate libraries and decomposition scripts for the quick-synthesis/mapping
// pass (paper Sec. 3: reliability analysis runs on a technology-mapped
// netlist; Sec. 4.1: five different implementations from different scripts
// and libraries demonstrate technology-independence of CED coverage).
#pragma once

#include <string>
#include <vector>

namespace apx {

/// Primitive-gate style a netlist is mapped into.
enum class LibraryStyle {
  kBasic,    ///< INV / AND2 / OR2
  kNand2,    ///< INV / NAND2 only
  kNor2,     ///< INV / NOR2 only
  kMixed23,  ///< INV / AND2-3 / OR2-3
  kAoi,      ///< INV / AND2 / OR2 / AOI21 / OAI21
};

/// Tree-shape script applied while decomposing node SOPs into gates.
enum class ScriptKind {
  kBalance,  ///< balanced AND/OR trees (delay-oriented)
  kCascade,  ///< linear chains (area-ordered, longer paths)
  kFactor,   ///< recursive most-frequent-literal factoring
};

struct GateLibrary {
  std::string name;
  LibraryStyle style = LibraryStyle::kBasic;

  static const GateLibrary& basic();
  static const GateLibrary& nand2();
  static const GateLibrary& nor2();
  static const GateLibrary& mixed23();
  static const GateLibrary& aoi();
};

/// A (library, script) pair defining one mapped implementation.
struct Implementation {
  const GateLibrary* library;
  ScriptKind script;
  std::string name;
};

/// The five standard implementations used by the Table-3 experiment.
const std::vector<Implementation>& standard_implementations();

std::string to_string(ScriptKind kind);

}  // namespace apx
