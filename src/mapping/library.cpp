#include "mapping/library.hpp"

namespace apx {

const GateLibrary& GateLibrary::basic() {
  static const GateLibrary lib{"basic", LibraryStyle::kBasic};
  return lib;
}
const GateLibrary& GateLibrary::nand2() {
  static const GateLibrary lib{"nand2", LibraryStyle::kNand2};
  return lib;
}
const GateLibrary& GateLibrary::nor2() {
  static const GateLibrary lib{"nor2", LibraryStyle::kNor2};
  return lib;
}
const GateLibrary& GateLibrary::mixed23() {
  static const GateLibrary lib{"mixed23", LibraryStyle::kMixed23};
  return lib;
}
const GateLibrary& GateLibrary::aoi() {
  static const GateLibrary lib{"aoi", LibraryStyle::kAoi};
  return lib;
}

const std::vector<Implementation>& standard_implementations() {
  static const std::vector<Implementation> impls = {
      {&GateLibrary::basic(), ScriptKind::kBalance, "impl1-basic-balance"},
      {&GateLibrary::nand2(), ScriptKind::kBalance, "impl2-nand2-balance"},
      {&GateLibrary::nor2(), ScriptKind::kCascade, "impl3-nor2-cascade"},
      {&GateLibrary::mixed23(), ScriptKind::kFactor, "impl4-mixed23-factor"},
      {&GateLibrary::aoi(), ScriptKind::kFactor, "impl5-aoi-factor"},
  };
  return impls;
}

std::string to_string(ScriptKind kind) {
  switch (kind) {
    case ScriptKind::kBalance:
      return "balance";
    case ScriptKind::kCascade:
      return "cascade";
    case ScriptKind::kFactor:
      return "factor";
  }
  return "?";
}

}  // namespace apx
