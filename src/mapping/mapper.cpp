#include "mapping/mapper.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "sop/algebraic.hpp"

namespace apx {
namespace {

// Incremental gate builder with inverter caching and constant folding.
class GateBuilder {
 public:
  GateBuilder(Network& dest, const MapOptions& options)
      : dest_(dest), options_(options) {}

  NodeId const_sig(bool value) {
    NodeId& cache = value ? const1_ : const0_;
    if (cache == kNullNode) cache = dest_.add_const(value);
    return cache;
  }

  bool is_const(NodeId s, bool value) const {
    NodeKind k = dest_.node(s).kind;
    return value ? k == NodeKind::kConst1 : k == NodeKind::kConst0;
  }

  NodeId make_inv(NodeId a) {
    if (is_const(a, false)) return const_sig(true);
    if (is_const(a, true)) return const_sig(false);
    auto it = inv_cache_.find(a);
    if (it != inv_cache_.end()) return it->second;
    // Peephole: inverting an inverter returns its input.
    const Node& n = dest_.node(a);
    if (n.kind == NodeKind::kLogic && n.fanins.size() == 1 &&
        n.sop.num_cubes() == 1 && n.sop.cube(0).get(0) == LitCode::kNeg) {
      return n.fanins[0];
    }
    NodeId inv = dest_.add_not(a);
    inv_cache_[a] = inv;
    inv_cache_[inv] = a;
    return inv;
  }

  NodeId make_and2(NodeId a, NodeId b) {
    if (is_const(a, false) || is_const(b, false)) return const_sig(false);
    if (is_const(a, true)) return b;
    if (is_const(b, true)) return a;
    if (a == b) return a;
    switch (options_.library->style) {
      case LibraryStyle::kNand2:
        return make_inv(add_nand2(a, b));
      case LibraryStyle::kNor2:
        return add_nor2(make_inv(a), make_inv(b));
      default:
        return dest_.add_and(a, b);
    }
  }

  NodeId make_or2(NodeId a, NodeId b) {
    if (is_const(a, true) || is_const(b, true)) return const_sig(true);
    if (is_const(a, false)) return b;
    if (is_const(b, false)) return a;
    if (a == b) return a;
    switch (options_.library->style) {
      case LibraryStyle::kNand2:
        return add_nand2(make_inv(a), make_inv(b));
      case LibraryStyle::kNor2:
        return make_inv(add_nor2(a, b));
      case LibraryStyle::kAoi: {
        // If either operand is an AND2 gate, fuse into AOI21 + INV:
        // x*y + c = INV(AOI21(x, y, c)).
        NodeId and_side = kNullNode, other = kNullNode;
        if (is_and2(a)) {
          and_side = a;
          other = b;
        } else if (is_and2(b)) {
          and_side = b;
          other = a;
        }
        if (and_side != kNullNode) {
          const Node& g = dest_.node(and_side);
          // AOI21(x,y,c) = NOT(x*y + c): off-set SOP = (x'+y')c' -> cubes
          // "0-0" and "-00".
          NodeId aoi = dest_.add_node({g.fanins[0], g.fanins[1], other},
                                      *Sop::parse(3, "0-0\n-00"));
          return make_inv(aoi);
        }
        return dest_.add_or(a, b);
      }
      default:
        return dest_.add_or(a, b);
    }
  }

  NodeId make_and3(NodeId a, NodeId b, NodeId c) {
    if (options_.library->style == LibraryStyle::kMixed23) {
      if (is_const(a, false) || is_const(b, false) || is_const(c, false))
        return const_sig(false);
      if (is_const(a, true)) return make_and2(b, c);
      if (is_const(b, true)) return make_and2(a, c);
      if (is_const(c, true)) return make_and2(a, b);
      return dest_.add_node({a, b, c}, *Sop::parse(3, "111"));
    }
    return make_and2(make_and2(a, b), c);
  }

  NodeId make_or3(NodeId a, NodeId b, NodeId c) {
    if (options_.library->style == LibraryStyle::kMixed23) {
      if (is_const(a, true) || is_const(b, true) || is_const(c, true))
        return const_sig(true);
      if (is_const(a, false)) return make_or2(b, c);
      if (is_const(b, false)) return make_or2(a, c);
      if (is_const(c, false)) return make_or2(a, b);
      return dest_.add_node({a, b, c}, *Sop::parse(3, "1--\n-1-\n--1"));
    }
    return make_or2(make_or2(a, b), c);
  }

  /// Reduces a list of signals with AND (`conj` true) or OR, using the
  /// configured script's tree shape.
  NodeId reduce(std::vector<NodeId> sigs, bool conj) {
    if (sigs.empty()) return const_sig(conj);
    const bool mixed = options_.library->style == LibraryStyle::kMixed23;
    if (options_.script == ScriptKind::kCascade) {
      NodeId acc = sigs[0];
      for (size_t i = 1; i < sigs.size(); ++i) {
        acc = conj ? make_and2(acc, sigs[i]) : make_or2(acc, sigs[i]);
      }
      return acc;
    }
    // Balanced (also used for factor leaves): combine in rounds; use 3-input
    // gates when the library has them.
    while (sigs.size() > 1) {
      std::vector<NodeId> next;
      size_t i = 0;
      while (i < sigs.size()) {
        size_t left = sigs.size() - i;
        if (mixed && left >= 3 && left != 4) {
          next.push_back(conj ? make_and3(sigs[i], sigs[i + 1], sigs[i + 2])
                              : make_or3(sigs[i], sigs[i + 1], sigs[i + 2]));
          i += 3;
        } else if (left >= 2) {
          next.push_back(conj ? make_and2(sigs[i], sigs[i + 1])
                              : make_or2(sigs[i], sigs[i + 1]));
          i += 2;
        } else {
          next.push_back(sigs[i]);
          i += 1;
        }
      }
      sigs = std::move(next);
    }
    return sigs[0];
  }

  bool is_and2(NodeId s) const {
    const Node& n = dest_.node(s);
    return n.kind == NodeKind::kLogic && n.fanins.size() == 2 &&
           n.sop.num_cubes() == 1 && n.sop.cube(0).literal_count() == 2 &&
           n.sop.cube(0).get(0) == LitCode::kPos &&
           n.sop.cube(0).get(1) == LitCode::kPos;
  }

 private:
  NodeId add_nand2(NodeId a, NodeId b) {
    return dest_.add_node({a, b}, *Sop::parse(2, "0-\n-0"));
  }
  NodeId add_nor2(NodeId a, NodeId b) {
    return dest_.add_node({a, b}, *Sop::parse(2, "00"));
  }

  Network& dest_;
  const MapOptions& options_;
  std::unordered_map<NodeId, NodeId> inv_cache_;
  NodeId const0_ = kNullNode;
  NodeId const1_ = kNullNode;
};

// Builds the gate network for one SOP given the signals of its fanins.
class SopDecomposer {
 public:
  SopDecomposer(GateBuilder& builder, const MapOptions& options)
      : builder_(builder), options_(options) {}

  NodeId build(const Sop& sop, const std::vector<NodeId>& fanin_sigs) {
    if (sop.empty()) return builder_.const_sig(false);
    for (const Cube& c : sop.cubes()) {
      if (c.is_full()) return builder_.const_sig(true);
    }
    if (options_.script == ScriptKind::kFactor) {
      return build_factored(sop, fanin_sigs);
    }
    return build_two_level(sop, fanin_sigs);
  }

 private:
  NodeId literal_sig(const std::vector<NodeId>& fanin_sigs, int var,
                     bool positive) {
    NodeId s = fanin_sigs[var];
    return positive ? s : builder_.make_inv(s);
  }

  NodeId build_cube(const Cube& c, const std::vector<NodeId>& fanin_sigs) {
    std::vector<NodeId> lits;
    for (int v = 0; v < c.num_vars(); ++v) {
      LitCode code = c.get(v);
      if (code == LitCode::kFree) continue;
      lits.push_back(literal_sig(fanin_sigs, v, code == LitCode::kPos));
    }
    return builder_.reduce(std::move(lits), /*conj=*/true);
  }

  NodeId build_two_level(const Sop& sop,
                         const std::vector<NodeId>& fanin_sigs) {
    std::vector<NodeId> cube_sigs;
    for (const Cube& c : sop.cubes()) {
      cube_sigs.push_back(build_cube(c, fanin_sigs));
    }
    return builder_.reduce(std::move(cube_sigs), /*conj=*/false);
  }

  NodeId build_factored(const Sop& sop,
                        const std::vector<NodeId>& fanin_sigs) {
    if (sop.num_cubes() == 1) return build_cube(sop.cube(0), fanin_sigs);
    // Kernel-based factoring first: extract the best algebraic kernel k
    // with f = q*k + r and recurse on the three pieces.
    if (sop.num_cubes() >= 3) {
      if (auto kernel = best_kernel(sop)) {
        auto [q, r] = algebraic_divide(sop, kernel->kernel);
        if (!q.empty()) {
          NodeId qs = build_factored(q, fanin_sigs);
          NodeId ks = build_factored(kernel->kernel, fanin_sigs);
          NodeId product = builder_.make_and2(qs, ks);
          if (r.empty()) return product;
          return builder_.make_or2(product, build_factored(r, fanin_sigs));
        }
      }
    }
    // Most frequent literal across cubes.
    const int n = sop.num_vars();
    int best_var = -1;
    bool best_phase = false;
    int best_count = 1;
    for (int v = 0; v < n; ++v) {
      int pos = 0, neg = 0;
      for (const Cube& c : sop.cubes()) {
        if (c.get(v) == LitCode::kPos) ++pos;
        if (c.get(v) == LitCode::kNeg) ++neg;
      }
      if (pos > best_count) {
        best_count = pos;
        best_var = v;
        best_phase = true;
      }
      if (neg > best_count) {
        best_count = neg;
        best_var = v;
        best_phase = false;
      }
    }
    if (best_var < 0) {
      // No literal shared by >= 2 cubes: plain two-level.
      return build_two_level(sop, fanin_sigs);
    }
    Sop quotient(n);
    Sop remainder(n);
    LitCode want = best_phase ? LitCode::kPos : LitCode::kNeg;
    for (const Cube& c : sop.cubes()) {
      if (c.get(best_var) == want) {
        quotient.add_cube(c.without_var(best_var));
      } else {
        remainder.add_cube(c);
      }
    }
    NodeId lit = literal_sig(fanin_sigs, best_var, best_phase);
    NodeId q = build_factored(quotient, fanin_sigs);
    NodeId product = builder_.make_and2(lit, q);
    if (remainder.empty()) return product;
    NodeId r = build_factored(remainder, fanin_sigs);
    return builder_.make_or2(product, r);
  }

  GateBuilder& builder_;
  const MapOptions& options_;
};

}  // namespace

Network technology_map(const Network& net, const MapOptions& options) {
  Network mapped;
  mapped.set_name(net.name() + "_" + options.library->name + "_" +
                  to_string(options.script));
  GateBuilder builder(mapped, options);
  SopDecomposer decomposer(builder, options);

  std::vector<NodeId> map(net.num_nodes(), kNullNode);
  for (NodeId pi : net.pis()) {
    map[pi] = mapped.add_pi(net.node(pi).name);
  }
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        map[id] = builder.const_sig(false);
        break;
      case NodeKind::kConst1:
        map[id] = builder.const_sig(true);
        break;
      case NodeKind::kLogic: {
        std::vector<NodeId> fanin_sigs;
        fanin_sigs.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanin_sigs.push_back(map[f]);
        map[id] = decomposer.build(n.sop, fanin_sigs);
        break;
      }
    }
  }
  for (const PrimaryOutput& po : net.pos()) {
    mapped.add_po(po.name, map[po.driver]);
  }
  mapped.cleanup();
  mapped.check();
  return mapped;
}

int mapped_area(const Network& mapped) { return mapped.num_logic_nodes(); }

int mapped_delay(const Network& mapped) { return mapped.depth(); }

bool is_mapped(const Network& net) {
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    if (n.kind != NodeKind::kLogic) continue;
    if (n.fanins.size() > 3) return false;
    if (n.sop.num_cubes() > 3) return false;
  }
  return true;
}

}  // namespace apx
