// End-to-end CED walk-through on a benchmark circuit (paper Sec. 3, Fig. 2).
//
// Runs every stage of the flow with commentary: quick synthesis + mapping,
// reliability analysis (dominant error direction per output), approximate-
// logic synthesis, checker construction, fault-injection coverage, and the
// overhead report.
//
//   $ ./examples/ced_pipeline [benchmark] [threshold]
//   $ ./examples/ced_pipeline cordic 0.1
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "core/pipeline.hpp"

using namespace apx;

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "cordic";
  double threshold = argc > 2 ? std::atof(argv[2]) : 0.1;

  Network net = make_benchmark(bench);
  std::printf("benchmark %-8s: %d PIs, %d POs, %d nodes\n", bench.c_str(),
              net.num_pis(), net.num_pos(), net.num_logic_nodes());

  PipelineOptions options;
  options.approx.significance_threshold = threshold;
  options.reliability.num_fault_samples = 2000;
  options.coverage.num_fault_samples = 2000;
  PipelineResult r = run_ced_pipeline(net, options);

  std::printf("\n-- stage 1: quick synthesis + mapping --\n");
  std::printf("mapped original: %d gates, depth %d\n",
              r.mapped_original.num_logic_nodes(), r.original_delay);

  std::printf("\n-- stage 2: reliability analysis --\n");
  int zero_dir = 0;
  for (auto d : r.directions) {
    if (d == ApproxDirection::kZeroApprox) ++zero_dir;
  }
  std::printf("dominant directions: %d outputs 0-approx, %d outputs 1-approx\n",
              zero_dir, static_cast<int>(r.directions.size()) - zero_dir);
  std::printf("max attainable CED coverage (direction skew bound): %.1f%%\n",
              100.0 * r.reliability.max_ced_coverage);

  std::printf("\n-- stage 3: approximate-logic synthesis --\n");
  std::printf("types: %d EX, %d DC, %d type-0, %d type-1\n",
              r.synthesis.types.count(NodeType::kEx),
              r.synthesis.types.count(NodeType::kDc),
              r.synthesis.types.count(NodeType::kZero),
              r.synthesis.types.count(NodeType::kOne));
  std::printf("POs correct after stage 1: %d / %d (repairs: %d)\n",
              r.synthesis.correct_after_stage1,
              static_cast<int>(r.synthesis.po_stats.size()),
              r.synthesis.repairs);
  std::printf("all approximations verified: %s\n",
              r.synthesis.all_verified() ? "yes" : "NO");
  std::printf("mean approximation percentage: %.1f%%\n",
              100.0 * r.mean_approximation_pct());

  std::printf("\n-- stage 4: mapped check-symbol generator --\n");
  std::printf("approximate circuit: %d gates, depth %d (original depth %d)\n",
              r.mapped_checkgen.num_logic_nodes(), r.checkgen_delay,
              r.original_delay);

  std::printf("\n-- stage 5: CED assembly + measurement --\n");
  std::printf("area overhead:  %.1f%% (checkgen %d + checkers %zu gates)\n",
              r.overheads.area_overhead_pct(),
              static_cast<int>(r.ced.checkgen_nodes.size()),
              r.ced.checker_nodes.size());
  std::printf("power overhead: %.1f%%\n", r.overheads.power_overhead_pct());
  std::printf("CED coverage:   %.1f%% of erroneous runs detected "
              "(%lld/%lld over %lld runs)\n",
              100.0 * r.coverage.coverage(),
              static_cast<long long>(r.coverage.detected),
              static_cast<long long>(r.coverage.erroneous),
              static_cast<long long>(r.coverage.runs));
  std::printf("delay: approximate circuit is %d levels vs %d (no "
              "performance penalty: %s)\n",
              r.checkgen_delay, r.original_delay,
              r.checkgen_delay <= r.original_delay ? "yes" : "NO");
  return r.synthesis.all_verified() ? 0 : 1;
}
