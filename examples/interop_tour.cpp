// Interop tour: move a CED design through every supported format and run
// the analysis extensions on it.
//
//   BLIF in -> synthesize CED -> .bench / PLA / Verilog out,
//   plus global-ODC analysis and TSC checker property report.
//
//   $ ./examples/interop_tour [output_dir]
#include <cstdio>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "core/odc_analysis.hpp"
#include "core/pipeline.hpp"
#include "core/tsc_analysis.hpp"
#include "network/bench_format.hpp"
#include "network/blif.hpp"
#include "network/pla.hpp"
#include "network/verilog.hpp"

using namespace apx;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";

  // A small real circuit: the 4-bit comparator.
  Network net = make_benchmark("cmp4");
  std::printf("circuit: %s (%d PIs, %d POs, %d nodes)\n\n",
              net.name().c_str(), net.num_pis(), net.num_pos(),
              net.num_logic_nodes());

  // Global ODC analysis: how much slack does each node have?
  if (auto odc = global_odc_fractions(net)) {
    double total = 0.0;
    int logic = 0;
    NodeId most_slack = kNullNode;
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (net.node(id).kind != NodeKind::kLogic) continue;
      total += (*odc)[id];
      ++logic;
      if (most_slack == kNullNode || (*odc)[id] > (*odc)[most_slack]) {
        most_slack = id;
      }
    }
    std::printf("global ODC: mean %.1f%% of the input space per node; most "
                "slack at '%s' (%.1f%%)\n",
                100.0 * total / logic, net.node(most_slack).name.c_str(),
                100.0 * (*odc)[most_slack]);
  }

  // Run the CED pipeline and export everything.
  PipelineOptions options;
  options.approx.significance_threshold = 0.15;
  PipelineResult r = run_ced_pipeline(net, options);
  std::printf("CED: %.1f%% area overhead, %.1f%% coverage\n\n",
              r.overheads.area_overhead_pct(),
              100.0 * r.coverage.coverage());

  write_blif_file(r.ced.design, dir + "/cmp4_ced.blif");
  write_bench_file(r.ced.design, dir + "/cmp4_ced.bench");
  write_verilog_file(r.ced.design, dir + "/cmp4_ced.v", "cmp4_ced");
  std::printf("wrote %s/cmp4_ced.{blif,bench,v}\n", dir.c_str());

  // Two-level view of the approximate check functions (PLA).
  write_pla_file(network_to_pla(r.synthesis.approx), dir + "/cmp4_check.pla");
  std::printf("wrote %s/cmp4_check.pla (two-level collapse of the check "
              "functions)\n\n",
              dir.c_str());

  // Round-trip sanity: read the .bench back and compare sizes.
  Network back = read_bench_file(dir + "/cmp4_ced.bench");
  std::printf("round trip via .bench: %d -> %d logic nodes (two-level "
              "re-expansion of wide gates)\n\n",
              r.ced.design.num_logic_nodes(), back.num_logic_nodes());

  // Checker TSC properties (paper Sec. 3.2).
  for (ApproxDirection dir_kind :
       {ApproxDirection::kZeroApprox, ApproxDirection::kOneApprox}) {
    TscReport rep = analyze_approx_checker(dir_kind);
    std::printf("%s checker: code-disjoint=%s, self-testing exceptions:",
                to_string(dir_kind).c_str(),
                rep.code_disjoint ? "yes" : "NO");
    for (const CheckerFaultReport* f : rep.self_testing_exceptions()) {
      std::printf(" %s s-a-%d", f->site.c_str(), f->stuck_value ? 1 : 0);
    }
    std::printf("\n");
  }
  return 0;
}
