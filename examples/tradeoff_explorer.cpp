// Overhead-vs-coverage trade-off explorer (the paper's headline claim of
// "fine-grained trade-offs between area-power overhead and CED coverage").
//
// Sweeps the stage-1 significance threshold and prints one row per point:
// higher thresholds drop more cubes, shrinking the check-symbol generator
// and (gradually) the achieved coverage.
//
//   $ ./examples/tradeoff_explorer [benchmark]
#include <cstdio>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "core/pipeline.hpp"

using namespace apx;

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "term1";
  Network net = make_benchmark(bench);
  std::printf("trade-off sweep on %s (%d gates tech-independent)\n\n",
              bench.c_str(), net.num_logic_nodes());
  std::printf("%-10s %8s %8s %10s %10s %10s\n", "threshold", "area%", "power%",
              "approx%", "coverage%", "max-cov%");

  for (double threshold : {0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5}) {
    PipelineOptions options;
    options.approx.significance_threshold = threshold;
    options.reliability.num_fault_samples = 1500;
    options.coverage.num_fault_samples = 1500;
    PipelineResult r = run_ced_pipeline(net, options);
    std::printf("%-10.2f %8.1f %8.1f %10.1f %10.1f %10.1f%s\n", threshold,
                r.overheads.area_overhead_pct(),
                r.overheads.power_overhead_pct(),
                100.0 * r.mean_approximation_pct(),
                100.0 * r.coverage.coverage(),
                100.0 * r.reliability.max_ced_coverage,
                r.synthesis.all_verified() ? "" : "  (UNVERIFIED!)");
  }
  std::printf("\nEvery row is a valid CED configuration: the threshold is a\n"
              "single knob trading check-generator size for coverage.\n");
  return 0;
}
