// Quickstart: the paper's Section-2 running example.
//
// Builds F = a + b + c'd' + cd, asks the library for a 1-approximation, and
// prints what the synthesis machinery did: the type assignment, the two
// cube-selection techniques on the output node, and the final approximate
// circuit with its approximation percentage (the paper reports G = a + b:
// 85.72% approximation for a fraction of the area).
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/approx_synthesis.hpp"
#include "core/cube_selection.hpp"
#include "core/verify.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "network/blif.hpp"

using namespace apx;

int main() {
  // F = (a + b) + XNOR(c, d), as a small multi-level network.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId ab = net.add_or(a, b, "ab");
  NodeId xnor_cd = net.add_node({c, d}, *Sop::parse(2, "00\n11"), "xnor_cd");
  NodeId f = net.add_or(ab, xnor_cd, "F");
  net.add_po("F", f);

  std::printf("== original circuit (BLIF) ==\n%s\n",
              write_blif_string(net).c_str());

  // Ask for a 1-approximation of the single output with an aggressive
  // significance threshold so the infrequent XNOR path is dropped.
  ApproxOptions options;
  options.significance_threshold = 0.45;
  ApproxResult result =
      synthesize_approximation(net, {ApproxDirection::kOneApprox}, options);

  std::printf("== type assignment ==\n");
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind != NodeKind::kLogic) continue;
    std::printf("  %-8s -> type %s\n", net.node(id).name.c_str(),
                to_string(result.types.of(id)).c_str());
  }

  // Show the two cube-selection techniques on the output node directly.
  std::vector<NodeType> fanin_types = {result.types.of(ab),
                                       result.types.of(xnor_cd)};
  Sop exact = exact_cube_selection(net.node(f).sop, fanin_types);
  auto odc = odc_cube_selection(net.node(f).sop, fanin_types);
  std::printf("\n== cube selection at node F (fanins: ab=%s, xnor=%s) ==\n",
              to_string(fanin_types[0]).c_str(),
              to_string(fanin_types[1]).c_str());
  std::printf("  exact selection keeps: {%s}\n",
              exact.to_string().empty() ? "-" : exact.to_string().c_str());
  if (odc) {
    std::printf("  ODC-based selection:   {%s}\n", odc->to_string().c_str());
  }

  std::printf("\n== approximate circuit (BLIF) ==\n%s\n",
              write_blif_string(result.approx).c_str());

  bool ok = verify_po_approximation(net, result.approx, 0,
                                    ApproxDirection::kOneApprox);
  double pct = approximation_percentage(net, result.approx, 0,
                                        ApproxDirection::kOneApprox);
  int orig_gates = technology_map(optimize(net)).num_logic_nodes();
  int approx_gates = technology_map(result.approx).num_logic_nodes();
  std::printf("G => F verified:          %s\n", ok ? "yes" : "NO");
  std::printf("approximation percentage: %.2f%%  (paper: 85.72%% for G=a+b)\n",
              100.0 * pct);
  std::printf("gate count:               %d -> %d\n", orig_gates,
              approx_gates);
  return ok ? 0 : 1;
}
