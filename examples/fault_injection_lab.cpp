// Fault-injection laboratory: watch the CED machinery catch (and miss)
// specific faults.
//
// Builds a CED-protected ripple-carry adder, then injects every single
// stuck-at fault in the functional circuit and classifies it:
//   detected        - output error flagged by the two-rail error pair
//   missed          - output error in the unprotected direction
//   silent          - fault never propagates to an output
//
//   $ ./examples/fault_injection_lab [benchmark] [threshold]
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "core/pipeline.hpp"
#include "sim/simulator.hpp"

using namespace apx;

int main(int argc, char** argv) {
  std::string bench = argc > 1 ? argv[1] : "rca4";
  double threshold = argc > 2 ? std::atof(argv[2]) : 0.1;

  Network net = make_benchmark(bench);
  PipelineOptions options;
  options.approx.significance_threshold = threshold;
  PipelineResult r = run_ced_pipeline(net, options);
  const CedDesign& ced = r.ced;

  std::printf("CED-protected %s: %d functional gates, %d overhead gates\n\n",
              bench.c_str(), ced.functional_area(), ced.overhead_area());

  Simulator sim(ced.design);
  const int words = 16;  // 1024 random vectors per fault
  sim.run(PatternSet::random(ced.design.num_pis(), words, 0xFA11));

  int detected = 0, missed = 0, silent = 0;
  std::printf("%-24s %-6s %10s %10s %s\n", "fault site", "s-a", "err rate",
              "det rate", "class");
  for (NodeId site : ced.functional_nodes) {
    for (bool value : {false, true}) {
      sim.inject({site, value});
      int64_t err_bits = 0, det_bits = 0;
      for (int w = 0; w < words; ++w) {
        uint64_t err = 0;
        for (NodeId out : ced.functional_outputs) {
          err |= sim.value(out)[w] ^ sim.faulty_value(out)[w];
        }
        uint64_t z1 = sim.faulty_value(ced.error_pair.rail1)[w];
        uint64_t z2 = sim.faulty_value(ced.error_pair.rail2)[w];
        err_bits += std::popcount(err);
        det_bits += std::popcount(err & ~(z1 ^ z2));
      }
      const char* cls;
      if (err_bits == 0) {
        cls = "silent";
        ++silent;
      } else if (det_bits > 0) {
        cls = "detected";
        ++detected;
      } else {
        cls = "missed";
        ++missed;
      }
      // Print the first few and any missed faults (the interesting ones).
      static int printed = 0;
      if (printed < 12 || (err_bits > 0 && det_bits == 0)) {
        std::printf("%-24s %-6d %9.1f%% %9.1f%% %s\n",
                    ced.design.node(site).name.c_str(), value ? 1 : 0,
                    100.0 * err_bits / (64.0 * words),
                    err_bits ? 100.0 * det_bits / err_bits : 0.0, cls);
        ++printed;
      }
    }
  }
  std::printf("\nfault census: %d detected, %d missed, %d silent "
              "(coverage of erroneous faults: %.1f%%)\n",
              detected, missed, silent,
              detected + missed > 0
                  ? 100.0 * detected / (detected + missed)
                  : 0.0);
  return 0;
}
